#include "dlscale/http/http1.hpp"

#include <cctype>
#include <charconv>

namespace dlscale::http {

namespace {

constexpr std::size_t kMaxHeadBytes = 16 * 1024;
constexpr std::string_view kCrlf = "\r\n";

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Splits `head` into its first line and parses the header lines after
/// it into `headers`. Throws on folded/invalid header lines.
std::string_view split_head(std::string_view head, std::vector<Header>& headers) {
  const std::size_t eol = head.find(kCrlf);
  const std::string_view first_line = head.substr(0, eol);
  std::string_view rest = eol == std::string_view::npos ? std::string_view{} : head.substr(eol + 2);
  while (!rest.empty()) {
    const std::size_t line_end = rest.find(kCrlf);
    const std::string_view line = rest.substr(0, line_end);
    rest = line_end == std::string_view::npos ? std::string_view{} : rest.substr(line_end + 2);
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      throw HttpError(400, "folded header lines are not supported");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw HttpError(400, "malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    if (name.back() == ' ' || name.back() == '\t') {
      throw HttpError(400, "whitespace before header colon");
    }
    headers.push_back(Header{std::string(name), std::string(trim(line.substr(colon + 1)))});
  }
  return first_line;
}

const std::string* find_header(const std::vector<Header>& headers, std::string_view name) {
  for (const Header& h : headers) {
    if (iequals(h.name, name)) return &h.value;
  }
  return nullptr;
}

void append_headers(std::string& out, const std::vector<Header>& headers,
                    std::size_t body_size) {
  bool have_length = false;
  for (const Header& h : headers) {
    if (iequals(h.name, "Content-Length")) have_length = true;
    out += h.name;
    out += ": ";
    out += h.value;
    out += kCrlf;
  }
  if (!have_length) {
    out += "Content-Length: ";
    out += std::to_string(body_size);
    out += kCrlf;
  }
  out += kCrlf;
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* Request::header(std::string_view name) const {
  return find_header(headers, name);
}

bool Request::keep_alive() const {
  const std::string* conn = header("Connection");
  if (conn == nullptr) return true;  // 1.1 default
  return !iequals(*conn, "close");
}

const std::string* Response::header(std::string_view name) const {
  return find_header(headers, name);
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string serialize(const Request& request) {
  std::string out;
  out.reserve(request.body.size() + 256);
  out += request.method;
  out += ' ';
  out += request.target;
  out += ' ';
  out += request.version.empty() ? std::string("HTTP/1.1") : request.version;
  out += kCrlf;
  if (find_header(request.headers, "Host") == nullptr) {
    out += "Host: localhost";
    out += kCrlf;
  }
  append_headers(out, request.headers, request.body.size());
  out += request.body;
  return out;
}

std::string serialize(const Response& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += response.reason.empty() ? status_reason(response.status) : response.reason.c_str();
  out += kCrlf;
  append_headers(out, response.headers, response.body.size());
  out += response.body;
  return out;
}

Request parse_request_head(std::string_view head) {
  Request request;
  const std::string_view line = split_head(head, request.headers);
  // request-line = method SP request-target SP HTTP-version
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    throw HttpError(400, "malformed request line");
  }
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() || request.target.front() != '/') {
    throw HttpError(400, "malformed request line");
  }
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
    throw HttpError(505, "unsupported HTTP version \"" + request.version + "\"");
  }
  return request;
}

Response parse_response_head(std::string_view head) {
  Response response;
  const std::string_view line = split_head(head, response.headers);
  // status-line = HTTP-version SP status-code SP reason-phrase
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || !line.substr(0, sp1).starts_with("HTTP/")) {
    throw HttpError(400, "malformed status line");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view code =
      line.substr(sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos : sp2 - sp1 - 1);
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), response.status);
  if (ec != std::errc() || ptr != code.data() + code.size() || response.status < 100 ||
      response.status > 599) {
    throw HttpError(400, "malformed status code");
  }
  if (sp2 != std::string_view::npos) response.reason = std::string(line.substr(sp2 + 1));
  return response;
}

std::size_t content_length(const std::vector<Header>& headers, std::size_t max_body) {
  const std::string* value = find_header(headers, "Content-Length");
  if (value == nullptr) return 0;
  std::size_t length = 0;
  const auto [ptr, ec] = std::from_chars(value->data(), value->data() + value->size(), length);
  if (ec != std::errc() || ptr != value->data() + value->size()) {
    throw HttpError(400, "unparsable Content-Length");
  }
  if (length > max_body) {
    throw HttpError(413, "body of " + std::to_string(length) + " bytes exceeds the " +
                             std::to_string(max_body) + "-byte limit");
  }
  return length;
}

std::optional<std::pair<std::string, std::string>> Connection::read_message(
    std::size_t max_body) {
  // Phase 1: accumulate until the head terminator.
  std::size_t head_end = buffer_.find("\r\n\r\n");
  while (head_end == std::string::npos) {
    if (buffer_.size() > kMaxHeadBytes) throw HttpError(400, "header section too large");
    char chunk[4096];
    const long got = socket_.recv_some(chunk, sizeof chunk);
    if (got <= 0) {
      if (buffer_.empty()) return std::nullopt;  // clean EOF between messages
      throw HttpError(400, "connection closed mid-head");
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
    head_end = buffer_.find("\r\n\r\n");
  }
  std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  // Phase 2: the body is Content-Length-framed.
  std::vector<Header> headers;
  (void)split_head(head, headers);
  const std::size_t body_len = content_length(headers, max_body);
  while (buffer_.size() < body_len) {
    char chunk[4096];
    const long got = socket_.recv_some(chunk, sizeof chunk);
    if (got <= 0) throw HttpError(400, "connection closed mid-body");
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  std::string body = buffer_.substr(0, body_len);
  buffer_.erase(0, body_len);
  return std::make_pair(std::move(head), std::move(body));
}

std::optional<Request> Connection::read_request(std::size_t max_body) {
  auto message = read_message(max_body);
  if (!message) return std::nullopt;
  Request request = parse_request_head(message->first);
  request.body = std::move(message->second);
  return request;
}

std::optional<Response> Connection::read_response(std::size_t max_body) {
  auto message = read_message(max_body);
  if (!message) return std::nullopt;
  Response response = parse_response_head(message->first);
  response.body = std::move(message->second);
  return response;
}

bool Connection::write(const Request& request) { return socket_.send_all(serialize(request)); }

bool Connection::write(const Response& response) { return socket_.send_all(serialize(response)); }

}  // namespace dlscale::http
