#include "dlscale/http/server.hpp"

#include <cstring>
#include <utility>

#include "dlscale/tensor/tensor.hpp"

namespace dlscale::http {

namespace {

Response error_response(int status, ErrorResponse body) {
  return json_response(status, body);
}

Response simple_error(int status, const std::string& message) {
  ErrorResponse body;
  body.error = message;
  return error_response(status, std::move(body));
}

std::vector<int> shape_vector(const tensor::Shape& shape) {
  return std::vector<int>(shape.begin(), shape.end());
}

}  // namespace

HttpServer::HttpServer(serve::ModelRegistry& registry, HttpConfig config)
    : registry_(registry),
      config_(config),
      listener_(static_cast<std::uint16_t>(config.port), config.backlog) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { shutdown(); }

bool HttpServer::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

void HttpServer::begin_drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
}

void HttpServer::shutdown(bool drain_models) {
  {
    std::lock_guard lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    draining_ = true;  // healthz flips first; connections keep answering
  }
  // Phase 1: drain the models. Queues close, admitted requests are
  // answered — predict handlers blocked on futures all complete here,
  // while /healthz keeps reporting "draining" to anyone asking.
  if (drain_models) registry_.shutdown();
  // Phase 2: stop the front door and wake every parked connection read.
  listener_.unblock();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard lock(mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->socket.shutdown_both();
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

FrontendStatsJson HttpServer::frontend_stats() const {
  FrontendStatsJson out;
  out.port = listener_.port();
  std::lock_guard lock(mutex_);
  out.draining = draining_;
  out.connections = connections_;
  out.requests = requests_;
  out.http_errors = http_errors_;
  return out;
}

void HttpServer::accept_loop() {
  for (;;) {
    auto socket = listener_.accept();
    if (!socket) return;  // unblocked by shutdown (or fatal accept error)
    if (config_.recv_timeout_ms > 0) socket->set_recv_timeout_ms(config_.recv_timeout_ms);
    std::lock_guard lock(mutex_);
    if (shut_down_) return;  // raced with shutdown: drop the connection
    reap_finished_locked();
    ++connections_;
    auto conn = std::make_unique<Conn>();
    conn->socket = std::move(*socket);
    Conn* raw = conn.get();
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void HttpServer::reap_finished_locked() {
  for (std::size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done) {
      if (conns_[i]->thread.joinable()) conns_[i]->thread.join();
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void HttpServer::connection_loop(Conn* conn) {
  // The Conn owns the fd and outlives this thread (entries are only
  // destroyed after join), so shutdown_both() from shutdown() can never
  // hit a recycled fd. The Connection below BORROWS the fd — it is
  // released back before the wrapper destructs, never double-closed.
  Connection connection(util::Socket(conn->socket.fd()));
  bool keep_going = true;
  while (keep_going) {
    Response response;
    bool have_response = false;
    try {
      auto request = connection.read_request(static_cast<std::size_t>(config_.max_body_bytes));
      if (!request) break;  // EOF / timeout / reset
      response = handle(*request);
      have_response = true;
      keep_going = request->keep_alive();
    } catch (const HttpError& e) {
      response = simple_error(e.status, e.what());
      have_response = true;
      keep_going = false;  // framing is suspect; close after answering
    } catch (const std::exception& e) {
      response = simple_error(500, e.what());
      have_response = true;
      keep_going = false;
    }
    if (have_response) {
      if (!keep_going) response.headers.push_back({"Connection", "close"});
      {
        std::lock_guard lock(mutex_);
        ++requests_;
        if (response.status >= 400) ++http_errors_;
      }
      if (!connection.write(response)) break;  // peer hung up
    }
  }
  // Hand the borrowed fd back before the Connection's Socket closes it.
  (void)connection.socket().release();
  std::lock_guard lock(mutex_);
  conn->done = true;
}

Response HttpServer::handle(const Request& request) {
  const std::string& target = request.target;
  if (target == "/healthz") {
    if (request.method != "GET") return simple_error(405, "healthz is GET-only");
    return handle_healthz();
  }
  if (target == "/stats") {
    if (request.method != "GET") return simple_error(405, "stats is GET-only");
    return handle_stats();
  }
  constexpr std::string_view kModels = "/v1/models/";
  if (target.size() > kModels.size() && std::string_view(target).starts_with(kModels)) {
    const std::string_view rest = std::string_view(target).substr(kModels.size());
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      return simple_error(404, "model routes are /v1/models/{name}:predict|:reload");
    }
    const std::string name(rest.substr(0, colon));
    const std::string_view verb = rest.substr(colon + 1);
    if (verb == "predict") {
      if (request.method != "POST") return simple_error(405, "predict is POST-only");
      return handle_predict(name, request);
    }
    if (verb == "reload") {
      if (request.method != "POST") return simple_error(405, "reload is POST-only");
      return handle_reload(name, request);
    }
    return simple_error(404, "unknown model verb \"" + std::string(verb) + "\"");
  }
  return simple_error(404, "no route for \"" + target + "\"");
}

Response HttpServer::handle_predict(const std::string& name, const Request& request) {
  const std::shared_ptr<serve::Server> server = registry_.find(name);
  if (server == nullptr) {
    ErrorResponse body;
    body.error = "unknown model";
    body.model = name;
    body.known_models = registry_.names();
    return error_response(404, std::move(body));
  }
  PredictRequest predict;
  try {
    predict = util::json::from_json<PredictRequest>(request.body);
  } catch (const util::json::Error& e) {
    return simple_error(400, std::string("bad predict body: ") + e.what());
  }
  // Pre-tensor validation: shape arity/positivity and element count must
  // agree before the bytes are trusted.
  if (predict.shape.size() != 3 && predict.shape.size() != 4) {
    ErrorResponse body;
    body.error = "shape must have 3 (C,S,S) or 4 (1,C,S,S) dims";
    body.model = name;
    body.got_shape = predict.shape;
    return error_response(400, std::move(body));
  }
  std::size_t numel = 1;
  for (const int dim : predict.shape) {
    if (dim <= 0) {
      ErrorResponse body;
      body.error = "shape dims must be positive";
      body.model = name;
      body.got_shape = predict.shape;
      return error_response(400, std::move(body));
    }
    numel *= static_cast<std::size_t>(dim);
  }
  if (numel != predict.image.size()) {
    ErrorResponse body;
    body.error = "image has " + std::to_string(predict.image.size()) +
                 " floats but shape wants " + std::to_string(numel);
    body.model = name;
    body.got_shape = predict.shape;
    return error_response(400, std::move(body));
  }
  tensor::Tensor image(tensor::Shape(predict.shape));
  std::memcpy(image.ptr(), predict.image.data(), numel * sizeof(float));

  serve::RejectReason why = serve::RejectReason::kNone;
  std::optional<std::future<serve::Response>> future;
  try {
    future = server->submit(std::move(image), &why);
  } catch (const serve::ShapeError& e) {
    // The named rejection of DESIGN.md §13: which model, expected vs
    // got — never a failure inside a worker forward.
    ErrorResponse body;
    body.error = e.what();
    body.model = e.model();
    body.expected_shape = shape_vector(e.expected());
    body.got_shape = shape_vector(e.got());
    return error_response(400, std::move(body));
  }
  if (!future) {
    ErrorResponse body;
    body.model = name;
    if (why == serve::RejectReason::kQueueFull) {
      body.error = "queue full — load shed, retry later";
      return error_response(429, std::move(body));
    }
    body.error = "model is draining (shutdown in progress)";
    return error_response(503, std::move(body));
  }
  serve::Response served;
  try {
    served = future->get();
  } catch (const std::exception& e) {
    return simple_error(500, std::string("inference failed: ") + e.what());
  }

  PredictResponse body;
  body.model = name;
  body.model_version = served.model_version;
  body.precision = nn::precision_name(served.precision);
  body.batch_size = served.batch_size;
  body.shape = shape_vector(served.logits.shape());
  body.logits.assign(served.logits.ptr(), served.logits.ptr() + served.logits.numel());
  body.labels = std::move(served.labels);
  body.queue_us = served.queue_us;
  body.total_us = served.total_us;
  return json_response(200, body);
}

Response HttpServer::handle_reload(const std::string& name, const Request& request) {
  const std::shared_ptr<serve::Server> server = registry_.find(name);
  if (server == nullptr) {
    ErrorResponse body;
    body.error = "unknown model";
    body.model = name;
    body.known_models = registry_.names();
    return error_response(404, std::move(body));
  }
  ReloadRequest reload;
  try {
    reload = util::json::from_json<ReloadRequest>(request.body);
  } catch (const util::json::Error& e) {
    return simple_error(400, std::string("bad reload body: ") + e.what());
  }
  if (reload.checkpoint.empty()) {
    return simple_error(400, "reload needs a \"checkpoint\" path");
  }
  try {
    if (reload.precision.empty()) {
      server->reload(reload.checkpoint);
    } else {
      serve::QuantizeSpec spec;
      spec.precision = parse_precision(reload.precision);
      server->reload(reload.checkpoint, std::move(spec));
    }
  } catch (const std::exception& e) {
    // Strong guarantee: the old weights keep serving; tell the operator
    // why the swap was refused.
    ErrorResponse body;
    body.error = e.what();
    body.model = name;
    return error_response(400, std::move(body));
  }
  ReloadResponse body;
  body.model = name;
  body.model_version = server->model_version();
  body.precision = server->stats().precision;  // already the name string
  return json_response(200, body);
}

Response HttpServer::handle_healthz() {
  HealthzResponse body;
  const bool drain = draining();
  body.status = drain ? "draining" : "ok";
  body.accepting = !drain;
  body.models = registry_.size();
  return json_response(200, body);
}

Response HttpServer::handle_stats() {
  StatsResponse body;
  body.server = frontend_stats();
  for (auto& [name, stats] : registry_.stats_all()) {
    body.models.push_back(to_stats_json(name, stats));
  }
  return json_response(200, body);
}

}  // namespace dlscale::http
