#include "dlscale/mpi/comm.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "dlscale/util/logging.hpp"

namespace dlscale::mpi {
namespace {

// Reserved tag space for internal collective traffic. User tags must stay
// below this; per-channel FIFO matching makes tag reuse across successive
// collectives safe (same guarantee real MPI relies on).
constexpr int kTagBarrier = 0x41000000;
constexpr int kTagBcast = 0x42000000;
constexpr int kTagReduce = 0x43000000;
constexpr int kTagRingRS = 0x44000000;
constexpr int kTagRingAG = 0x45000000;
constexpr int kTagRecDouble = 0x46000000;
constexpr int kTagRabenRS = 0x47000000;
constexpr int kTagRabenAG = 0x48000000;
constexpr int kTagGather = 0x49000000;
constexpr int kTagAllgather = 0x4A000000;
constexpr int kTagBlobData = 0x4C000000;

struct Message {
  std::vector<std::byte> payload;
  std::size_t logical_bytes = 0;
  // Timing metadata (unused when the world runs with timing disabled).
  double available_at = 0.0;  ///< virtual time the data lands at the receiver
  double wire_s = 0.0;        ///< serialisation time (re-used if receiver is late)
  double pipeline_extra_s = 0.0;  ///< staging-pipeline slack beyond the wire
  double handshake_s = 0.0;
  bool rendezvous = false;
  int sender_global = -1;
};

struct MailKey {
  std::uint64_t comm;
  int src;
  int dst;
  int tag;
  bool operator==(const MailKey&) const = default;
};

struct MailKeyHash {
  std::size_t operator()(const MailKey& k) const noexcept {
    std::uint64_t h = k.comm;
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.src + 1);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.dst + 1);
    h = h * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(k.tag + 1);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

std::uint64_t mix_comm_id(std::uint64_t parent, std::uint64_t seq, int color) {
  std::uint64_t h = parent ^ 0x2545F4914F6CDD1Dull;
  h = (h + seq) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) + static_cast<std::uint64_t>(color + 7);
  h *= 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

// Deterministic per-message uniform in [0, 1): a splitmix64-style hash of
// (seed, sender, per-sender sequence number, salt). Independent of thread
// interleaving, so FaultPlan drop/delay decisions replay exactly.
double hash_uniform(std::uint64_t seed, int sender, std::uint64_t seq, std::uint64_t salt) {
  std::uint64_t x = seed ^ (static_cast<std::uint64_t>(sender + 1) * 0x9E3779B97F4A7C15ull) ^
                    ((seq + 1) * 0xBF58476D1CE4E5B9ull) ^ ((salt + 1) * 0x94D049BB133111EBull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

RankFailed::RankFailed(int failed_global_rank_, std::string op_, int tag_)
    : std::runtime_error("rank " + std::to_string(failed_global_rank_) + " failed (detected in " +
                         op_ + (tag_ >= 0 ? ", tag " + std::to_string(tag_) : "") + ")"),
      failed_global_rank(failed_global_rank_),
      op(std::move(op_)),
      tag(tag_) {}

/// Thrown inside ranks blocked on communication when another rank fails;
/// suppressed by run_world in favour of the original exception.
struct WorldAborted : std::runtime_error {
  WorldAborted() : std::runtime_error("simmpi world aborted") {}
};

class World {
 public:
  explicit World(const WorldOptions& options)
      : options_(options),
        cost_(options.topology, options.profile),
        nic_(options.topology.nodes(), std::max(1, options.profile.rails)),
        clocks_(static_cast<std::size_t>(options.topology.world_size())),
        stats_(static_cast<std::size_t>(options.topology.world_size())),
        shards_(static_cast<std::size_t>(options.topology.world_size())),
        dead_(static_cast<std::size_t>(options.topology.world_size()), 0),
        ticks_(static_cast<std::size_t>(options.topology.world_size()), 0),
        send_seq_(static_cast<std::size_t>(options.topology.world_size()), 0) {}

  void post(const MailKey& key, Message message) {
    Shard& shard = shards_[static_cast<std::size_t>(key.dst)];
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.boxes[key].push_back(std::move(message));
    }
    shard.cv.notify_all();
  }

  /// Blocking take that also wakes on world abort and on the death of any
  /// rank in `members`. On death, returns an empty Message and sets
  /// *failed to the first dead member (death order) — the caller raises
  /// RankFailed. Death wins over an available message: a revoked
  /// communicator never delivers.
  Message take(const MailKey& key, const std::vector<int>& members, int* failed) {
    Shard& shard = shards_[static_cast<std::size_t>(key.dst)];
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait(lock, [&] {
      if (aborted_.load(std::memory_order_acquire)) return true;
      if (first_dead_among(members) != -1) return true;
      auto it = shard.boxes.find(key);
      return it != shard.boxes.end() && !it->second.empty();
    });
    if (aborted_.load(std::memory_order_acquire)) throw WorldAborted{};
    if (const int dead = first_dead_among(members); dead != -1) {
      *failed = dead;
      return {};
    }
    auto it = shard.boxes.find(key);
    Message message = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) shard.boxes.erase(it);
    return message;
  }

  void abort() {
    aborted_.store(true, std::memory_order_release);
    for (Shard& shard : shards_) shard.cv.notify_all();
    shrink_cv_.notify_all();
  }

  // ---- fault injection ----

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool is_dead(int global_rank) const {
    if (epoch() == 1) return false;  // fast path: nobody has ever died
    std::lock_guard<std::mutex> lock(fault_mutex_);
    return dead_[static_cast<std::size_t>(global_rank)] != 0;
  }

  /// First member of `members` to have died (world death order), or -1.
  [[nodiscard]] int first_dead_among(const std::vector<int>& members) const {
    if (epoch() == 1) return -1;
    std::lock_guard<std::mutex> lock(fault_mutex_);
    for (int g : deaths_) {
      if (std::find(members.begin(), members.end(), g) != members.end()) return g;
    }
    return -1;
  }

  /// Mark `global_rank` dead and wake every blocked rank so revoked
  /// communicators raise promptly. The empty lock/unlock of each waiter
  /// mutex before notify closes the missed-wakeup window: the death state
  /// lives under fault_mutex_, not the mutex a waiter's predicate runs
  /// under, so we must serialise with any waiter currently between its
  /// predicate check and its block.
  void kill(int global_rank) {
    {
      std::lock_guard<std::mutex> lock(fault_mutex_);
      auto& flag = dead_[static_cast<std::size_t>(global_rank)];
      if (flag != 0) return;
      flag = 1;
      deaths_.push_back(global_rank);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    for (Shard& shard : shards_) {
      { std::lock_guard<std::mutex> lock(shard.mutex); }
      shard.cv.notify_all();
    }
    { std::lock_guard<std::mutex> lock(shrink_mutex_); }
    shrink_cv_.notify_all();
  }

  /// This rank's application step counter (post-increment).
  long next_tick(int global_rank) { return ticks_[static_cast<std::size_t>(global_rank)]++; }

  /// Apply the FaultPlan's drop/delay perturbation to an outgoing
  /// message. Drops model loss + retransmit (the payload still arrives,
  /// `retransmit_s` later), so blocking receivers never hang on a lossy
  /// link. In non-timing worlds the events are counted but delivery is
  /// unaffected.
  void perturb(Message& message, int sender_global) {
    const FaultPlan& plan = options_.faults;
    if (plan.flaky_rank >= 0 && sender_global != plan.flaky_rank) return;
    const double t = clocks_[static_cast<std::size_t>(sender_global)].now();
    if (plan.window_from_s >= 0 && t < plan.window_from_s) return;
    if (plan.window_until_s >= 0 && t >= plan.window_until_s) return;
    const std::uint64_t seq = send_seq_[static_cast<std::size_t>(sender_global)]++;
    auto& st = stats_[static_cast<std::size_t>(sender_global)];
    if (hash_uniform(plan.seed, sender_global, seq, 0) < plan.drop_prob) {
      ++st.messages_dropped;
      if (options_.timing) message.available_at += plan.retransmit_s;
    }
    if (hash_uniform(plan.seed, sender_global, seq, 1) < plan.delay_prob) {
      ++st.messages_delayed;
      if (options_.timing) message.available_at += plan.delay_s;
    }
  }

  /// Survivor rendezvous behind Communicator::shrink(). Blocks until
  /// every live member of `comm` has arrived (ranks that die while we
  /// wait stop being waited for), then hands every participant the same
  /// {survivor list, fresh comm id} computed once by whichever waiter's
  /// predicate observes completion first.
  Communicator shrink(const Communicator& comm) {
    std::unique_lock<std::mutex> lock(shrink_mutex_);
    ShrinkState& st = shrinks_[comm.comm_id_];
    if (st.arrived.empty()) st.arrived.assign(comm.members_.size(), 0);
    st.arrived[static_cast<std::size_t>(comm.my_index_)] = 1;
    shrink_cv_.wait(lock, [&] {
      if (aborted_.load(std::memory_order_acquire)) return true;
      return shrink_ready(st, comm.members_, comm.comm_id_);
    });
    if (aborted_.load(std::memory_order_acquire)) throw WorldAborted{};
    std::vector<int> survivors = st.survivors;
    const std::uint64_t new_id = st.new_comm_id;
    if (++st.leavers == static_cast<int>(st.survivors.size())) shrinks_.erase(comm.comm_id_);
    lock.unlock();
    int my_new_index = -1;
    for (std::size_t r = 0; r < survivors.size(); ++r) {
      if (survivors[r] == comm.global_rank()) my_new_index = static_cast<int>(r);
    }
    return Communicator(this, new_id, std::move(survivors), my_new_index);
  }

  [[nodiscard]] bool link_faults_active() const noexcept {
    return options_.faults.any_link_faults();
  }

  [[nodiscard]] VirtualClock& clock(int global_rank) {
    return clocks_[static_cast<std::size_t>(global_rank)];
  }
  [[nodiscard]] CommStats& stats(int global_rank) {
    return stats_[static_cast<std::size_t>(global_rank)];
  }
  [[nodiscard]] const net::CostModel& cost() const noexcept { return cost_; }
  [[nodiscard]] net::NicContention& nic() noexcept { return nic_; }
  [[nodiscard]] const WorldOptions& options() const noexcept { return options_; }

 private:
  struct Shard {
    std::mutex mutex;
    std::condition_variable cv;
    std::unordered_map<MailKey, std::deque<Message>, MailKeyHash> boxes;
  };

  struct ShrinkState {
    std::vector<char> arrived;  ///< by member index of the shrinking comm
    bool ready = false;
    std::uint64_t new_comm_id = 0;
    std::vector<int> survivors;  ///< global ranks, old relative order
    int leavers = 0;
  };

  // Runs under shrink_mutex_ (as a wait predicate). Finalises the state —
  // freezing the survivor set and minting the shared comm id — the first
  // time every live member has arrived.
  bool shrink_ready(ShrinkState& st, const std::vector<int>& members, std::uint64_t comm_id) {
    if (st.ready) return true;
    for (std::size_t r = 0; r < members.size(); ++r) {
      if (!is_dead(members[r]) && st.arrived[r] == 0) return false;
    }
    st.survivors.clear();
    for (int g : members) {
      if (!is_dead(g)) st.survivors.push_back(g);
    }
    st.new_comm_id = mix_comm_id(comm_id, ++shrink_seq_, 1);
    st.ready = true;
    shrink_cv_.notify_all();
    return true;
  }

  WorldOptions options_;
  net::CostModel cost_;
  net::NicContention nic_;
  std::vector<VirtualClock> clocks_;
  std::vector<CommStats> stats_;
  std::vector<Shard> shards_;
  std::atomic<bool> aborted_{false};

  // Fault state. `epoch_` starts at 1 and counts deaths; readers use it
  // as a lock-free "has anyone ever died" fast path.
  mutable std::mutex fault_mutex_;
  std::vector<char> dead_;
  std::vector<int> deaths_;  ///< global ranks in death order
  std::atomic<std::uint64_t> epoch_{1};
  std::vector<long> ticks_;               ///< per-rank fault_tick counters
  std::vector<std::uint64_t> send_seq_;   ///< per-sender message counters (drop/delay RNG)
  std::mutex shrink_mutex_;
  std::condition_variable shrink_cv_;
  std::uint64_t shrink_seq_ = 0;
  std::unordered_map<std::uint64_t, ShrinkState> shrinks_;
};

// ---------------------------------------------------------------------------
// point-to-point
// ---------------------------------------------------------------------------

void Communicator::send(int dst, int tag, std::span<const std::byte> data, MemSpace space,
                        std::size_t logical_bytes) {
  if (dst < 0 || dst >= size()) throw std::out_of_range("send: bad destination rank");
  ensure_live("send", tag);
  const std::size_t logical = logical_bytes == kAuto ? data.size() : logical_bytes;
  const int gsrc = global_rank();
  const int gdst = global_rank_of(dst);

  Message message;
  message.payload.assign(data.begin(), data.end());
  message.logical_bytes = logical;
  message.sender_global = gsrc;

  if (world_->options().timing) {
    auto& clk = world_->clock(gsrc);
    const double t0 = clk.now();
    const net::TransferCost cost = world_->cost().message(gsrc, gdst, logical, space);
    message.rendezvous = world_->cost().is_rendezvous(logical, space);
    message.wire_s = cost.wire_s;
    message.pipeline_extra_s = cost.pipeline_extra_s;
    message.handshake_s = world_->cost().profile().rendezvous_handshake_s;
    const double setup_done = t0 + cost.setup_s;
    if (cost.inter_node) {
      // The NIC DMA engine serialises the wire portion; the sender's CPU/GPU
      // is released after setup.
      message.available_at =
          world_->nic().reserve(world_->cost().topology().node_of(gsrc),
                                world_->cost().topology().node_of(gdst), setup_done, cost.wire_s,
                                cost.striped) +
          cost.pipeline_extra_s;
      clk.advance(cost.setup_s);
      world_->stats(gsrc).comm_time_s += cost.setup_s;
    } else if (gsrc != gdst) {
      // Intra-node NVLink/X-bus transfers are copy-engine DMA: the sender
      // is released after setup, the wire runs in the background (full
      // duplex — a rank can send and receive concurrently).
      message.available_at = setup_done + cost.wire_s;
      clk.advance(cost.setup_s);
      world_->stats(gsrc).comm_time_s += cost.setup_s;
    } else {
      // Self-sends are plain local copies and occupy the rank.
      message.available_at = setup_done + cost.wire_s;
      clk.advance(cost.setup_s + cost.wire_s);
      world_->stats(gsrc).comm_time_s += cost.setup_s + cost.wire_s;
    }
  }
  if (world_->link_faults_active()) world_->perturb(message, gsrc);
  world_->post(MailKey{comm_id_, my_index_, dst, tag}, std::move(message));
}

void Communicator::recv(int src, int tag, std::span<std::byte> out, MemSpace space,
                        std::size_t logical_bytes) {
  if (src < 0 || src >= size()) throw std::out_of_range("recv: bad source rank");
  ensure_live("recv", tag, src);
  const MailKey key{comm_id_, src, my_index_, tag};
  int failed = -1;
  Message message = world_->take(key, members_, &failed);
  if (failed != -1) raise_failed(failed, "recv", tag, src);

  if (!message.payload.empty() || !out.empty()) {
    if (message.payload.size() != out.size()) {
      throw std::runtime_error("recv: size mismatch (got " +
                               std::to_string(message.payload.size()) + " bytes, expected " +
                               std::to_string(out.size()) + ")");
    }
    std::memcpy(out.data(), message.payload.data(), out.size());
  }

  const int grank = global_rank();
  auto& st = world_->stats(grank);
  ++st.messages;
  st.bytes += logical_bytes == kAuto ? message.logical_bytes : logical_bytes;

  if (world_->options().timing) {
    auto& clk = world_->clock(grank);
    const auto& profile = world_->cost().profile();
    double r0 = clk.now() + profile.per_op_overhead_s;
    if (space == MemSpace::kDevice) r0 += profile.device_op_overhead_s;
    double completion;
    if (message.rendezvous) {
      // Transfer starts only once both sides have posted: if the receiver
      // is late, serialisation replays from its arrival; the sender's
      // buffer is held until completion, so bump its clock too.
      completion = std::max(message.available_at,
                            r0 + message.handshake_s + message.wire_s + message.pipeline_extra_s);
      world_->clock(message.sender_global).bump_to(completion);
    } else {
      completion = std::max(message.available_at, r0);
    }
    const double before = clk.now();
    clk.bump_to(completion);
    st.comm_time_s += std::max(0.0, completion - before);
  }
}

Communicator::Request Communicator::isend(int dst, int tag, std::span<const std::byte> data,
                                          MemSpace space, std::size_t logical_bytes) {
  send(dst, tag, data, space, logical_bytes);
  return Request{};
}

Communicator::Request Communicator::irecv(int src, int tag, std::span<std::byte> out,
                                          MemSpace space, std::size_t logical_bytes) {
  return Request([this, src, tag, out, space, logical_bytes] {
    recv(src, tag, out, space, logical_bytes);
  });
}

void Communicator::sendrecv(int dst, int send_tag, std::span<const std::byte> send_data, int src,
                            int recv_tag, std::span<std::byte> recv_data, MemSpace space,
                            std::size_t send_logical, std::size_t recv_logical) {
  // Sends are buffered, so posting the send first makes ring/exchange
  // patterns deadlock-free, mirroring MPI_Sendrecv.
  send(dst, send_tag, send_data, space, send_logical);
  recv(src, recv_tag, recv_data, space, recv_logical);
}

std::vector<std::byte> Communicator::recv_dynamic(int src, int tag, MemSpace space) {
  if (src < 0 || src >= size()) throw std::out_of_range("recv_dynamic: bad source rank");
  ensure_live("recv_dynamic", tag, src);
  const MailKey key{comm_id_, src, my_index_, tag};
  int failed = -1;
  Message message = world_->take(key, members_, &failed);
  if (failed != -1) raise_failed(failed, "recv_dynamic", tag, src);

  const int grank = global_rank();
  auto& st = world_->stats(grank);
  ++st.messages;
  st.bytes += message.logical_bytes;

  if (world_->options().timing) {
    auto& clk = world_->clock(grank);
    const auto& profile = world_->cost().profile();
    double r0 = clk.now() + profile.per_op_overhead_s;
    if (space == MemSpace::kDevice) r0 += profile.device_op_overhead_s;
    double completion;
    if (message.rendezvous) {
      completion = std::max(message.available_at,
                            r0 + message.handshake_s + message.wire_s + message.pipeline_extra_s);
      world_->clock(message.sender_global).bump_to(completion);
    } else {
      completion = std::max(message.available_at, r0);
    }
    const double before = clk.now();
    clk.bump_to(completion);
    st.comm_time_s += std::max(0.0, completion - before);
  }
  return std::move(message.payload);
}

// XOR, not +: callers pass collective tag constants (kTagGather etc.)
// whose sum with kTagBlobData overflows int. XOR keeps small user tags
// identical to addition and maps each collective constant to a distinct
// low-range value no direct send ever uses.
void Communicator::send_blob(int dst, int tag, std::span<const std::byte> blob) {
  send(dst, kTagBlobData ^ tag, blob);
}

std::vector<std::byte> Communicator::recv_blob(int src, int tag) {
  return recv_dynamic(src, kTagBlobData ^ tag);
}

// ---------------------------------------------------------------------------
// collectives
// ---------------------------------------------------------------------------

void Communicator::barrier() {
  ensure_live("barrier", -1);
  const int n = size();
  if (n == 1) return;
  int round = 0;
  for (int k = 1; k < n; k <<= 1, ++round) {
    const int dst = (my_index_ + k) % n;
    const int src = (my_index_ - k % n + n) % n;
    send(dst, kTagBarrier + round, {});
    recv(src, kTagBarrier + round, {});
  }
}

void Communicator::binomial_bcast(std::byte* data, std::size_t bytes, int root, MemSpace space,
                                  std::size_t logical_bytes) {
  const int n = size();
  if (n == 1) return;
  const int vrank = (my_index_ - root + n) % n;
  std::span<std::byte> buf(data, data != nullptr ? bytes : 0);

  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % n;
      recv(src, kTagBcast, buf, space, logical_bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int dst = ((vrank + mask) + root) % n;
      send(dst, kTagBcast, buf, space, logical_bytes);
    }
    mask >>= 1;
  }
}

void Communicator::bcast(std::span<std::byte> data, int root, MemSpace space,
                         std::size_t logical_bytes) {
  ensure_live("bcast", -1);
  const std::size_t logical = logical_bytes == kAuto ? data.size() : logical_bytes;
  binomial_bcast(data.data(), data.size(), root, space, logical);
}

std::vector<std::byte> Communicator::bcast_blob(std::span<const std::byte> blob, int root) {
  // Binomial tree of dynamic messages: one message per edge regardless of
  // payload size (no separate size phase).
  ensure_live("bcast_blob", -1);
  const int n = size();
  std::vector<std::byte> out;
  if (my_index_ == root) out.assign(blob.begin(), blob.end());
  if (n == 1) return out;
  const int vrank = (my_index_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % n;
      out = recv_dynamic(src, kTagBcast + 3);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int dst = ((vrank + mask) + root) % n;
      send(dst, kTagBcast + 3, out);
    }
    mask >>= 1;
  }
  return out;
}

std::vector<std::vector<std::byte>> Communicator::gather_blobs(std::span<const std::byte> mine,
                                                               int root) {
  ensure_live("gather_blobs", -1);
  std::vector<std::vector<std::byte>> all;
  if (my_index_ == root) {
    all.resize(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      if (r == my_index_) {
        all[static_cast<std::size_t>(r)].assign(mine.begin(), mine.end());
      } else {
        all[static_cast<std::size_t>(r)] = recv_blob(r, kTagGather);
      }
    }
  } else {
    send_blob(root, kTagGather, mine);
  }
  return all;
}

void Communicator::allgather(std::span<const std::byte> mine, std::span<std::byte> out,
                             MemSpace space) {
  ensure_live("allgather", -1);
  const int n = size();
  const std::size_t block = mine.size();
  if (out.size() != block * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("allgather: out must hold size() blocks");
  }
  std::copy(mine.begin(), mine.end(),
            out.begin() + static_cast<std::ptrdiff_t>(block * static_cast<std::size_t>(my_index_)));
  if (n == 1) return;
  const int right = (my_index_ + 1) % n;
  const int left = (my_index_ - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_block = (my_index_ - step + n) % n;
    const int recv_block = (my_index_ - step - 1 + n) % n;
    sendrecv(right, kTagAllgather + step,
             out.subspan(block * static_cast<std::size_t>(send_block), block), left,
             kTagAllgather + step,
             out.subspan(block * static_cast<std::size_t>(recv_block), block), space);
  }
}

void Communicator::scatter(std::span<const std::byte> blocks, std::span<std::byte> mine,
                           int root, MemSpace space) {
  ensure_live("scatter", -1);
  const int n = size();
  const std::size_t block = mine.size();
  if (my_index_ == root) {
    if (blocks.size() != block * static_cast<std::size_t>(n)) {
      throw std::invalid_argument("scatter: root blocks must hold size() blocks");
    }
    for (int r = 0; r < n; ++r) {
      const auto src = blocks.subspan(block * static_cast<std::size_t>(r), block);
      if (r == my_index_) {
        std::copy(src.begin(), src.end(), mine.begin());
      } else {
        send(r, kTagBcast + 2, src, space);
      }
    }
  } else {
    recv(root, kTagBcast + 2, mine, space);
  }
}

void Communicator::gather(std::span<const std::byte> mine, std::span<std::byte> blocks, int root,
                          MemSpace space) {
  ensure_live("gather", -1);
  const int n = size();
  const std::size_t block = mine.size();
  if (my_index_ == root) {
    if (blocks.size() != block * static_cast<std::size_t>(n)) {
      throw std::invalid_argument("gather: root blocks must hold size() blocks");
    }
    for (int r = 0; r < n; ++r) {
      auto dst = blocks.subspan(block * static_cast<std::size_t>(r), block);
      if (r == my_index_) {
        std::copy(mine.begin(), mine.end(), dst.begin());
      } else {
        recv(r, kTagGather + 2, dst, space);
      }
    }
  } else {
    send(root, kTagGather + 2, mine, space);
  }
}

void Communicator::alltoall(std::span<const std::byte> send_blocks,
                            std::span<std::byte> recv_blocks, MemSpace space) {
  ensure_live("alltoall", -1);
  const int n = size();
  if (send_blocks.size() != recv_blocks.size() ||
      send_blocks.size() % static_cast<std::size_t>(n) != 0) {
    throw std::invalid_argument("alltoall: buffers must hold size() equal blocks");
  }
  const std::size_t block = send_blocks.size() / static_cast<std::size_t>(n);
  // Own block is a local copy.
  std::copy(send_blocks.begin() + static_cast<std::ptrdiff_t>(block * my_index_),
            send_blocks.begin() + static_cast<std::ptrdiff_t>(block * (my_index_ + 1)),
            recv_blocks.begin() + static_cast<std::ptrdiff_t>(block * my_index_));
  // Pairwise exchange: at step s talk to rank ^ s (power-of-two worlds) or
  // the (my + s, my - s) pairing otherwise.
  for (int step = 1; step < n; ++step) {
    const int dst = (my_index_ + step) % n;
    const int src = (my_index_ - step + n) % n;
    sendrecv(dst, kTagAllgather + 64 + step,
             send_blocks.subspan(block * static_cast<std::size_t>(dst), block), src,
             kTagAllgather + 64 + step,
             recv_blocks.subspan(block * static_cast<std::size_t>(src), block), space);
  }
}

void Communicator::reduce_compute(std::size_t bytes, MemSpace space, int src) {
  if (!world_->options().timing || bytes == 0) return;
  const auto& profile = world_->cost().profile();
  double bw = profile.reduce_bw_host_Bps;
  if (space == MemSpace::kDevice) {
    // The incoming chunk only lands in host memory when it was staged:
    // inter-node, above the GDR window, under a staging library.
    const bool inter_node =
        world_->cost().topology().hop(global_rank(), global_rank_of(src)) ==
        net::HopClass::kInterNode;
    const bool staged = profile.staged_reduce_on_host && inter_node && bytes > profile.gdr_limit;
    bw = staged ? profile.reduce_bw_host_Bps : profile.reduce_bw_device_Bps;
  }
  const double dt = static_cast<double>(bytes) / bw;
  world_->clock(global_rank()).advance(dt);
  world_->stats(global_rank()).comm_time_s += dt;
}

namespace {

/// Span over an element window of a buffer that may be null (timing-only).
std::span<std::byte> window(std::byte* data, std::size_t elem_size, std::size_t off,
                            std::size_t len) {
  if (data == nullptr) return {};
  return {data + off * elem_size, len * elem_size};
}

}  // namespace

void Communicator::ring_allreduce(std::byte* data, std::size_t elem_size, std::size_t count,
                                  const Reducer* reducer, MemSpace space) {
  const int n = size();
  if (n == 1 || count == 0) return;
  // Element partition: first (count % n) segments get one extra element.
  const std::size_t base = count / static_cast<std::size_t>(n);
  const std::size_t extra = count % static_cast<std::size_t>(n);
  auto seg_off = [&](int s) {
    const auto u = static_cast<std::size_t>(s);
    return u * base + std::min(u, extra);
  };
  auto seg_len = [&](int s) {
    return base + (static_cast<std::size_t>(s) < extra ? 1 : 0);
  };

  std::vector<std::byte> tmp;
  if (data != nullptr) tmp.resize((base + 1) * elem_size);
  const int right = (my_index_ + 1) % n;
  const int left = (my_index_ - 1 + n) % n;

  // Phase 1: reduce-scatter.
  for (int step = 0; step < n - 1; ++step) {
    const int send_seg = (my_index_ - step + n) % n;
    const int recv_seg = (my_index_ - step - 1 + n) % n;
    const std::size_t send_bytes = seg_len(send_seg) * elem_size;
    const std::size_t recv_bytes = seg_len(recv_seg) * elem_size;
    std::span<std::byte> incoming =
        data != nullptr ? std::span<std::byte>(tmp.data(), recv_bytes) : std::span<std::byte>{};
    sendrecv(right, kTagRingRS + step, window(data, elem_size, seg_off(send_seg), seg_len(send_seg)),
             left, kTagRingRS + step, incoming, space, send_bytes, recv_bytes);
    if (data != nullptr && reducer != nullptr) {
      reducer->apply(data + seg_off(recv_seg) * elem_size, tmp.data(), seg_len(recv_seg));
    }
    reduce_compute(recv_bytes, space, left);
  }

  // Phase 2: allgather.
  for (int step = 0; step < n - 1; ++step) {
    const int send_seg = (my_index_ + 1 - step + 2 * n) % n;
    const int recv_seg = (my_index_ - step + n) % n;
    sendrecv(right, kTagRingAG + step,
             window(data, elem_size, seg_off(send_seg), seg_len(send_seg)), left,
             kTagRingAG + step, window(data, elem_size, seg_off(recv_seg), seg_len(recv_seg)),
             space, seg_len(send_seg) * elem_size, seg_len(recv_seg) * elem_size);
  }
}

void Communicator::ring_reduce_scatter_phase(std::byte* data, std::size_t elem_size,
                                             std::size_t count, const Reducer* reducer,
                                             MemSpace space) {
  ensure_live("reduce_scatter", -1);
  const int n = size();
  if (n == 1 || count == 0) return;
  const std::size_t base = count / static_cast<std::size_t>(n);
  const std::size_t extra = count % static_cast<std::size_t>(n);
  auto seg_off = [&](int s) {
    const auto u = static_cast<std::size_t>(s);
    return u * base + std::min(u, extra);
  };
  auto seg_len = [&](int s) { return base + (static_cast<std::size_t>(s) < extra ? 1 : 0); };

  std::vector<std::byte> tmp;
  if (data != nullptr) tmp.resize((base + 1) * elem_size);
  const int right = (my_index_ + 1) % n;
  const int left = (my_index_ - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_seg = (my_index_ - step + n) % n;
    const int recv_seg = (my_index_ - step - 1 + n) % n;
    const std::size_t send_bytes = seg_len(send_seg) * elem_size;
    const std::size_t recv_bytes = seg_len(recv_seg) * elem_size;
    std::span<std::byte> incoming =
        data != nullptr ? std::span<std::byte>(tmp.data(), recv_bytes) : std::span<std::byte>{};
    sendrecv(right, kTagRingRS + 128 + step,
             window(data, elem_size, seg_off(send_seg), seg_len(send_seg)), left,
             kTagRingRS + 128 + step, incoming, space, send_bytes, recv_bytes);
    if (data != nullptr && reducer != nullptr) {
      reducer->apply(data + seg_off(recv_seg) * elem_size, tmp.data(), seg_len(recv_seg));
    }
    reduce_compute(recv_bytes, space, left);
  }
}

void Communicator::recursive_doubling_allreduce(std::byte* data, std::size_t elem_size,
                                                std::size_t count, const Reducer* reducer,
                                                MemSpace space) {
  const int n = size();
  if (n == 1 || count == 0) return;
  const std::size_t bytes = count * elem_size;
  std::vector<std::byte> tmp;
  if (data != nullptr) tmp.resize(bytes);
  auto incoming = [&]() -> std::span<std::byte> {
    return data != nullptr ? std::span<std::byte>(tmp) : std::span<std::byte>{};
  };
  auto apply = [&](int src) {
    if (data != nullptr && reducer != nullptr) reducer->apply(data, tmp.data(), count);
    reduce_compute(bytes, space, src);
  };

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;

  // Fold the non-power-of-two remainder into the power-of-two core.
  int newrank;
  if (my_index_ < 2 * rem) {
    if (my_index_ % 2 == 0) {
      send(my_index_ + 1, kTagRecDouble, window(data, elem_size, 0, count), space, bytes);
      newrank = -1;
    } else {
      recv(my_index_ - 1, kTagRecDouble, incoming(), space, bytes);
      apply(my_index_ - 1);
      newrank = my_index_ / 2;
    }
  } else {
    newrank = my_index_ - rem;
  }

  if (newrank != -1) {
    auto old_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner = old_rank(newrank ^ mask);
      sendrecv(partner, kTagRecDouble + 16 + mask, window(data, elem_size, 0, count), partner,
               kTagRecDouble + 16 + mask, incoming(), space, bytes, bytes);
      apply(partner);
    }
  }

  // Unfold: odd ranks return the result to their even partners.
  if (my_index_ < 2 * rem) {
    if (my_index_ % 2 == 0) {
      recv(my_index_ + 1, kTagRecDouble + 1, window(data, elem_size, 0, count), space, bytes);
    } else {
      send(my_index_ - 1, kTagRecDouble + 1, window(data, elem_size, 0, count), space, bytes);
    }
  }
}

void Communicator::rabenseifner_allreduce(std::byte* data, std::size_t elem_size,
                                          std::size_t count, const Reducer* reducer,
                                          MemSpace space) {
  const int n = size();
  if (n == 1 || count == 0) return;
  const std::size_t bytes = count * elem_size;

  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  // For tiny counts the halving bookkeeping degenerates; fall back.
  if (static_cast<std::size_t>(pof2) > count || pof2 < 2) {
    recursive_doubling_allreduce(data, elem_size, count, reducer, space);
    return;
  }

  std::vector<std::byte> tmp;
  if (data != nullptr) tmp.resize(bytes);

  // Fold remainder (same as recursive doubling).
  int newrank;
  if (my_index_ < 2 * rem) {
    if (my_index_ % 2 == 0) {
      send(my_index_ + 1, kTagRabenRS, window(data, elem_size, 0, count), space, bytes);
      newrank = -1;
    } else {
      std::span<std::byte> incoming =
          data != nullptr ? std::span<std::byte>(tmp.data(), bytes) : std::span<std::byte>{};
      recv(my_index_ - 1, kTagRabenRS, incoming, space, bytes);
      if (data != nullptr && reducer != nullptr) reducer->apply(data, tmp.data(), count);
      reduce_compute(bytes, space, my_index_ - 1);
      newrank = my_index_ / 2;
    }
  } else {
    newrank = my_index_ - rem;
  }

  auto old_rank = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };

  struct Level {
    std::size_t pre_off, pre_len;   // window before this split
    std::size_t kept_off, kept_len;  // my half after the split
  };
  std::vector<Level> levels;

  if (newrank != -1) {
    // Recursive-halving reduce-scatter.
    std::size_t off = 0;
    std::size_t len = count;
    for (int dist = pof2 / 2; dist >= 1; dist /= 2) {
      const int partner_new = newrank ^ dist;
      const int partner = old_rank(partner_new);
      const std::size_t lo = len / 2;
      Level level{off, len, 0, 0};
      std::size_t send_off, send_len, keep_off, keep_len;
      if ((newrank & dist) == 0) {
        keep_off = off;
        keep_len = lo;
        send_off = off + lo;
        send_len = len - lo;
      } else {
        keep_off = off + lo;
        keep_len = len - lo;
        send_off = off;
        send_len = lo;
      }
      std::span<std::byte> incoming =
          data != nullptr ? std::span<std::byte>(tmp.data(), keep_len * elem_size)
                          : std::span<std::byte>{};
      sendrecv(partner, kTagRabenRS + 16 + dist, window(data, elem_size, send_off, send_len),
               partner, kTagRabenRS + 16 + dist, incoming, space, send_len * elem_size,
               keep_len * elem_size);
      if (data != nullptr && reducer != nullptr) {
        reducer->apply(data + keep_off * elem_size, tmp.data(), keep_len);
      }
      reduce_compute(keep_len * elem_size, space, partner);
      level.kept_off = keep_off;
      level.kept_len = keep_len;
      levels.push_back(level);
      off = keep_off;
      len = keep_len;
    }

    // Recursive-doubling allgather: undo the splits in reverse order.
    for (int i = static_cast<int>(levels.size()) - 1; i >= 0; --i) {
      const Level& level = levels[static_cast<std::size_t>(i)];
      const int dist = pof2 >> (i + 1);
      const int partner = old_rank(newrank ^ dist);
      // Partner holds the complement of my kept window within pre window.
      std::size_t other_off, other_len;
      if (level.kept_off == level.pre_off) {
        other_off = level.pre_off + level.kept_len;
        other_len = level.pre_len - level.kept_len;
      } else {
        other_off = level.pre_off;
        other_len = level.pre_len - level.kept_len;
      }
      sendrecv(partner, kTagRabenAG + 16 + dist,
               window(data, elem_size, level.kept_off, level.kept_len), partner,
               kTagRabenAG + 16 + dist, window(data, elem_size, other_off, other_len), space,
               level.kept_len * elem_size, other_len * elem_size);
    }
  }

  // Unfold remainder.
  if (my_index_ < 2 * rem) {
    if (my_index_ % 2 == 0) {
      recv(my_index_ + 1, kTagRabenAG + 1, window(data, elem_size, 0, count), space, bytes);
    } else {
      send(my_index_ - 1, kTagRabenAG + 1, window(data, elem_size, 0, count), space, bytes);
    }
  }
}

void Communicator::reduce_bytes(std::byte* data, std::size_t elem_size, std::size_t count,
                                const Reducer* reducer, int root, MemSpace space) {
  ensure_live("reduce", -1);
  const int n = size();
  if (n == 1 || count == 0) return;
  const std::size_t bytes = count * elem_size;
  std::vector<std::byte> tmp;
  if (data != nullptr) tmp.resize(bytes);
  const int vrank = (my_index_ - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) == 0) {
      const int vpartner = vrank | mask;
      if (vpartner < n) {
        const int partner = (vpartner + root) % n;
        std::span<std::byte> incoming =
            data != nullptr ? std::span<std::byte>(tmp) : std::span<std::byte>{};
        recv(partner, kTagReduce, incoming, space, bytes);
        if (data != nullptr && reducer != nullptr) reducer->apply(data, tmp.data(), count);
        reduce_compute(bytes, space, partner);
      }
    } else {
      const int partner = ((vrank & ~mask) + root) % n;
      send(partner, kTagReduce, window(data, elem_size, 0, count), space, bytes);
      break;
    }
    mask <<= 1;
  }
}

void Communicator::allreduce_bytes(std::byte* data, std::size_t elem_size, std::size_t count,
                                   const Reducer* reducer, MemSpace space, AllreduceAlgo algo) {
  ensure_live("allreduce", -1);
  switch (algo) {
    case AllreduceAlgo::kRing: ring_allreduce(data, elem_size, count, reducer, space); return;
    case AllreduceAlgo::kRecursiveDoubling:
      recursive_doubling_allreduce(data, elem_size, count, reducer, space);
      return;
    case AllreduceAlgo::kRabenseifner:
      rabenseifner_allreduce(data, elem_size, count, reducer, space);
      return;
  }
}

void Communicator::ring_reduce_to_root(std::byte* data, std::size_t elem_size, std::size_t count,
                                       const Reducer* reducer, MemSpace space) {
  const int n = size();
  if (n == 1 || count == 0) return;
  // Phase 1: ring reduce-scatter (pipelined, bandwidth-optimal) so every
  // rank owns one fully-reduced segment...
  const std::size_t base = count / static_cast<std::size_t>(n);
  const std::size_t extra = count % static_cast<std::size_t>(n);
  auto seg_off = [&](int s) {
    const auto u = static_cast<std::size_t>(s);
    return u * base + std::min(u, extra);
  };
  auto seg_len = [&](int s) { return base + (static_cast<std::size_t>(s) < extra ? 1 : 0); };

  std::vector<std::byte> tmp;
  if (data != nullptr) tmp.resize((base + 1) * elem_size);
  const int right = (my_index_ + 1) % n;
  const int left = (my_index_ - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_seg = (my_index_ - step + n) % n;
    const int recv_seg = (my_index_ - step - 1 + n) % n;
    const std::size_t send_bytes = seg_len(send_seg) * elem_size;
    const std::size_t recv_bytes = seg_len(recv_seg) * elem_size;
    std::span<std::byte> incoming =
        data != nullptr ? std::span<std::byte>(tmp.data(), recv_bytes) : std::span<std::byte>{};
    sendrecv(right, kTagRingRS + step, window(data, elem_size, seg_off(send_seg), seg_len(send_seg)),
             left, kTagRingRS + step, incoming, space, send_bytes, recv_bytes);
    if (data != nullptr && reducer != nullptr) {
      reducer->apply(data + seg_off(recv_seg) * elem_size, tmp.data(), seg_len(recv_seg));
    }
    reduce_compute(recv_bytes, space, left);
  }
  // ...Phase 2: gather the reduced segments at root 0. After n-1 steps,
  // rank r owns segment (r + 1) mod n fully reduced.
  const int owned = (my_index_ + 1) % n;
  if (my_index_ == 0) {
    for (int r = 1; r < n; ++r) {
      const int seg = (r + 1) % n;
      if (seg_len(seg) == 0) continue;
      recv(r, kTagGather + 1, window(data, elem_size, seg_off(seg), seg_len(seg)), space,
           seg_len(seg) * elem_size);
    }
  } else if (seg_len(owned) > 0) {
    send(0, kTagGather + 1, window(data, elem_size, seg_off(owned), seg_len(owned)), space,
         seg_len(owned) * elem_size);
  }
}

void Communicator::scatter_allgather_bcast(std::byte* data, std::size_t elem_size,
                                           std::size_t count, MemSpace space) {
  const int n = size();
  if (n == 1 || count == 0) return;
  // Large-message broadcast as scatter + ring allgather (van de Geijn),
  // moving ~2x the data total instead of log2(n)x.
  const std::size_t base = count / static_cast<std::size_t>(n);
  const std::size_t extra = count % static_cast<std::size_t>(n);
  auto seg_off = [&](int s) {
    const auto u = static_cast<std::size_t>(s);
    return u * base + std::min(u, extra);
  };
  auto seg_len = [&](int s) { return base + (static_cast<std::size_t>(s) < extra ? 1 : 0); };

  if (my_index_ == 0) {
    for (int r = 1; r < n; ++r) {
      if (seg_len(r) == 0) continue;
      send(r, kTagBcast + 1, window(data, elem_size, seg_off(r), seg_len(r)), space,
           seg_len(r) * elem_size);
    }
  } else if (seg_len(my_index_) > 0) {
    recv(0, kTagBcast + 1, window(data, elem_size, seg_off(my_index_), seg_len(my_index_)), space,
         seg_len(my_index_) * elem_size);
  }

  const int right = (my_index_ + 1) % n;
  const int left = (my_index_ - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int send_seg = (my_index_ - step + n) % n;
    const int recv_seg = (my_index_ - step - 1 + n) % n;
    sendrecv(right, kTagRingAG + step,
             window(data, elem_size, seg_off(send_seg), seg_len(send_seg)), left,
             kTagRingAG + step, window(data, elem_size, seg_off(recv_seg), seg_len(recv_seg)),
             space, seg_len(send_seg) * elem_size, seg_len(recv_seg) * elem_size);
  }
}

void Communicator::hierarchical_bytes(std::byte* data, std::size_t elem_size, std::size_t count,
                                      const Reducer* reducer, MemSpace space,
                                      std::optional<AllreduceAlgo> leader_algo) {
  ensure_live("hierarchical_allreduce", -1);
  const auto& topo = world_->cost().topology();
  // Lazily build cached node/leader communicators the first time every
  // member reaches this path (collectively consistent because SPMD order).
  if (!hier_built_) {
    node_comm_ = std::make_shared<Communicator>(split(topo.node_of(global_rank())));
    const bool leader = node_comm_->rank() == 0;
    leader_comm_ = std::make_shared<Communicator>(split(leader ? 0 : -1));
    hier_built_ = true;
  }
  const std::size_t bytes = count * elem_size;
  // Pipelined intra-node phases (reduce-scatter based) keep the NVLink
  // stage bandwidth-optimal, mirroring the NCCL-backed intra-node path
  // real hierarchical Horovod uses. Small payloads use the tree variants.
  const bool pipelined = bytes >= (256 << 10);
  if (pipelined) {
    node_comm_->ring_reduce_to_root(data, elem_size, count, reducer, space);
  } else {
    node_comm_->reduce_bytes(data, elem_size, count, reducer, 0, space);
  }
  if (leader_comm_->valid()) {
    const AllreduceAlgo algo = leader_algo.value_or(
        profile().allreduce_algo(bytes, space == MemSpace::kDevice, leader_comm_->size()));
    leader_comm_->allreduce_bytes(data, elem_size, count, reducer, space, algo);
  }
  if (pipelined) {
    node_comm_->scatter_allgather_bcast(data, elem_size, count, space);
  } else {
    node_comm_->binomial_bcast(data, data != nullptr ? bytes : 0, 0, space, bytes);
  }
}

void Communicator::allreduce_custom(std::byte* data, std::size_t elem_size, std::size_t count,
                                    const Reducer& reducer, MemSpace space,
                                    std::optional<AllreduceAlgo> algo) {
  if (reducer.elem_size != elem_size) {
    throw std::invalid_argument("allreduce_custom: reducer element size mismatch");
  }
  const AllreduceAlgo chosen = algo.value_or(
      profile().allreduce_algo(count * elem_size, space == MemSpace::kDevice, size()));
  allreduce_bytes(data, elem_size, count, &reducer, space, chosen);
}

void Communicator::allreduce_sim(std::size_t bytes, MemSpace space,
                                 std::optional<AllreduceAlgo> algo) {
  const std::size_t count = (bytes + 3) / 4;
  const AllreduceAlgo chosen =
      algo.value_or(profile().allreduce_algo(bytes, space == MemSpace::kDevice, size()));
  allreduce_bytes(nullptr, 4, count, nullptr, space, chosen);
}

void Communicator::hierarchical_allreduce_sim(std::size_t bytes, MemSpace space,
                                              std::optional<AllreduceAlgo> leader_algo) {
  const std::size_t count = (bytes + 3) / 4;
  hierarchical_bytes(nullptr, 4, count, nullptr, space, leader_algo);
}

Communicator Communicator::split(int color) {
  ensure_live("split", -1);
  const std::uint64_t seq = ++split_seq_;
  std::int32_t mine = color;
  auto blobs = gather_blobs(std::as_bytes(std::span<const std::int32_t, 1>(&mine, 1)), 0);
  std::vector<std::int32_t> colors(static_cast<std::size_t>(size()));
  if (my_index_ == 0) {
    for (int r = 0; r < size(); ++r) {
      std::memcpy(&colors[static_cast<std::size_t>(r)], blobs[static_cast<std::size_t>(r)].data(),
                  sizeof(std::int32_t));
    }
  }
  const auto colors_blob = bcast_blob(std::as_bytes(std::span<const std::int32_t>(colors)), 0);
  std::memcpy(colors.data(), colors_blob.data(), colors_blob.size());

  if (color < 0) return Communicator(world_, 0, {}, -1);

  std::vector<int> group_global;
  int my_new_index = -1;
  for (int r = 0; r < size(); ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      if (r == my_index_) my_new_index = static_cast<int>(group_global.size());
      group_global.push_back(members_[static_cast<std::size_t>(r)]);
    }
  }
  return Communicator(world_, mix_comm_id(comm_id_, seq, color), std::move(group_global),
                      my_new_index);
}

// ---------------------------------------------------------------------------
// time & introspection
// ---------------------------------------------------------------------------

void Communicator::compute(double seconds) {
  if (seconds < 0) throw std::invalid_argument("compute: negative duration");
  if (world_->options().timing) world_->clock(global_rank()).advance(seconds);
}

double Communicator::now() const { return world_->clock(global_rank()).now(); }

VirtualClock& Communicator::clock() { return world_->clock(global_rank()); }

const net::Topology& Communicator::topology() const { return world_->cost().topology(); }

const net::MpiProfile& Communicator::profile() const { return world_->cost().profile(); }

bool Communicator::timing_enabled() const { return world_->options().timing; }

CommStats Communicator::stats() const { return world_->stats(global_rank()); }

// ---------------------------------------------------------------------------
// fault awareness
// ---------------------------------------------------------------------------

void Communicator::die() {
  const int grank = global_rank();
  world_->kill(grank);
  throw RankKilled{grank};
}

void Communicator::maybe_die_on_time() {
  if (!world_->options().timing) return;
  const int grank = global_rank();
  const double now_s = world_->clock(grank).now();
  for (const FaultPlan::Kill& k : world_->options().faults.kills) {
    if (k.global_rank == grank && k.at_time_s >= 0 && now_s >= k.at_time_s) die();
  }
}

void Communicator::raise_failed(int first_dead_global, const char* op, int tag,
                                int expected_src) {
  // Blame the awaited sender when it is the dead one, so a recv's
  // exception names the peer the caller was actually waiting for.
  if (expected_src >= 0 && world_->is_dead(global_rank_of(expected_src))) {
    throw RankFailed(global_rank_of(expected_src), op, tag);
  }
  throw RankFailed(first_dead_global, op, tag);
}

void Communicator::ensure_live(const char* op, int tag, int expected_src) {
  if (!world_->options().faults.any_kills()) return;
  maybe_die_on_time();
  const int dead = world_->first_dead_among(members_);
  if (dead != -1) raise_failed(dead, op, tag, expected_src);
}

void Communicator::fault_tick() {
  const FaultPlan& plan = world_->options().faults;
  if (!plan.any_kills()) return;
  const int grank = global_rank();
  const long tick = world_->next_tick(grank);
  for (const FaultPlan::Kill& k : plan.kills) {
    if (k.global_rank == grank && k.at_step >= 0 && tick == k.at_step) die();
  }
  maybe_die_on_time();
}

std::vector<int> Communicator::alive() const {
  std::vector<int> live;
  live.reserve(members_.size());
  for (int r = 0; r < size(); ++r) {
    if (!world_->is_dead(members_[static_cast<std::size_t>(r)])) live.push_back(r);
  }
  return live;
}

std::uint64_t Communicator::world_epoch() const { return world_->epoch(); }

bool Communicator::revoked() const { return world_->first_dead_among(members_) != -1; }

Communicator Communicator::shrink() {
  maybe_die_on_time();
  return world_->shrink(*this);
}

// ---------------------------------------------------------------------------
// world runner
// ---------------------------------------------------------------------------

void run_world(const WorldOptions& options, const std::function<void(Communicator&)>& body) {
  const int world_size = options.topology.world_size();
  World world(options);

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      util::set_thread_log_rank(rank);
      std::vector<int> members(static_cast<std::size_t>(world_size));
      for (int r = 0; r < world_size; ++r) members[static_cast<std::size_t>(r)] = r;
      Communicator comm(&world, 1, std::move(members), rank);
      try {
        body(comm);
      } catch (const WorldAborted&) {
        // Secondary failure caused by another rank's abort; ignore.
      } catch (const RankKilled&) {
        // Injected fail-stop death: an expected, clean exit for this rank.
        // Survivors observe it as RankFailed on their own threads.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world.abort();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void run_world(int world_size, const std::function<void(Communicator&)>& body) {
  WorldOptions options;
  options.topology = net::Topology::single_node(world_size);
  options.profile = net::MpiProfile::ideal();
  options.timing = false;
  run_world(options, body);
}

}  // namespace dlscale::mpi
