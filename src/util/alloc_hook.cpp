// Counting overrides of the global allocation functions. Everything
// routes through malloc/free (including the aligned forms) so the
// replacement set is self-consistent no matter which new/delete pairing
// the standard library picks.
#include "dlscale/util/alloc_hook.hpp"

#ifdef DLSCALE_ALLOC_HOOK

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace dlscale::util {

std::uint64_t alloc_count() noexcept { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t free_count() noexcept { return g_frees.load(std::memory_order_relaxed); }

}  // namespace dlscale::util

#endif  // DLSCALE_ALLOC_HOOK
