#include "dlscale/util/arena.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

namespace dlscale::util {

namespace {

constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

std::byte* aligned_new(std::size_t bytes) {
  return static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{Arena::kAlignment}));
}

void aligned_delete(std::byte* p) noexcept {
  ::operator delete(p, std::align_val_t{Arena::kAlignment});
}

}  // namespace

Arena::Arena() : Arena(Options{}) {}

Arena::Arena(Options options) : guard_(options.guard) {}

Arena::~Arena() { release_blocks(); }

void Arena::release_blocks() noexcept {
  for (Block& b : blocks_) aligned_delete(b.data);
  blocks_.clear();
  block_ = 0;
  offset_ = 0;
}

std::size_t Arena::capacity() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

void Arena::ensure_single_block(std::size_t bytes) {
  if (blocks_.size() == 1 && blocks_[0].size >= bytes) return;
  release_blocks();
  if (bytes > 0) blocks_.push_back({aligned_new(bytes), bytes});
}

void* Arena::bump(std::size_t stride) {
  while (block_ < blocks_.size() && blocks_[block_].size - offset_ < stride) {
    ++block_;
    offset_ = 0;
  }
  if (block_ == blocks_.size()) {
    // Grow the chain: double the last block (at least the request) so
    // warmup converges in O(log) heap allocations; reset() coalesces.
    const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
    const std::size_t size = std::max(stride, std::max<std::size_t>(last * 2, 1 << 16));
    blocks_.push_back({aligned_new(size), size});
    offset_ = 0;
  }
  std::byte* p = blocks_[block_].data + offset_;
  offset_ += stride;
  used_ += stride;
  watermark_ = std::max(watermark_, used_);
  return p;
}

void* Arena::allocate(std::size_t bytes) {
  const std::size_t aligned = std::max(align_up(bytes), kAlignment);
  if (planned_) {
    if (replay_ >= plan_.sizes.size()) {
      throw std::logic_error("Arena: allocation beyond the installed plan");
    }
    if (plan_.sizes[replay_] != aligned) {
      throw std::logic_error("Arena: allocation size diverges from the plan");
    }
    std::byte* p = blocks_[0].data + plan_.offsets[replay_];
    ++replay_;
    used_ = std::max(used_, plan_.offsets[replay_ - 1] + aligned);
    watermark_ = std::max(watermark_, used_);
    return p;
  }
  const std::size_t stride = guard_ ? aligned + kAlignment : aligned;
  std::byte* p = static_cast<std::byte*>(bump(stride));
  if (guard_) {
    std::memset(p + aligned, kGuardByte, kAlignment);
    guards_.push_back({p + aligned});
  }
  if (tracing_) {
    trace_.push_back({aligned, ++tick_, 0});
    live_.emplace_back(p, trace_.size() - 1);
  }
  return p;
}

void Arena::check_guards() const {
  for (const Guard& g : guards_) {
    for (std::size_t i = 0; i < kAlignment; ++i) {
      if (static_cast<unsigned char>(g.band[i]) != kGuardByte) {
        throw std::logic_error("Arena: guard canary tripped (buffer overrun)");
      }
    }
  }
}

void Arena::reset() {
  if (planned_) {
    replay_ = 0;
    used_ = 0;
    return;
  }
  check_guards();
  if (guard_) {
    // Poison everything that was handed out so stale reads are loud.
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const std::size_t filled = b < block_ ? blocks_[b].size : (b == block_ ? offset_ : 0);
      if (filled > 0) std::memset(blocks_[b].data, kPoisonByte, filled);
    }
  }
  guards_.clear();
  if (blocks_.size() > 1 || (blocks_.size() == 1 && blocks_[0].size < watermark_)) {
    ensure_single_block(watermark_);
  }
  block_ = 0;
  offset_ = 0;
  used_ = 0;
  tracing_ = false;
  trace_.clear();
  live_.clear();
}

Arena::Frame::Frame(Arena& arena) noexcept
    : arena_(arena),
      block_(arena.block_),
      offset_(arena.offset_),
      used_(arena.used_),
      guards_(arena.guards_.size()) {}

Arena::Frame::~Frame() {
  if (arena_.guard_) {
    // Poison only the popped tail of the frame's starting block; later
    // blocks are wholly dead and get poisoned at the next reset().
    if (block_ < arena_.blocks_.size() && arena_.block_ == block_ &&
        arena_.offset_ > offset_) {
      std::memset(arena_.blocks_[block_].data + offset_, kPoisonByte,
                  arena_.offset_ - offset_);
    }
    arena_.guards_.resize(guards_);
  }
  arena_.block_ = block_;
  arena_.offset_ = offset_;
  arena_.used_ = used_;
}

void Arena::begin_trace() {
  if (planned_) throw std::logic_error("Arena: cannot trace in planned mode");
  reset();
  tracing_ = true;
  tick_ = 0;
  trace_.clear();
  live_.clear();
}

void Arena::note_release(const void* p) noexcept {
  if (!tracing_ || p == nullptr) return;
  // Scan from the back: releases overwhelmingly target recent allocations
  // (LIFO-ish Tensor lifetimes), and the trace is a few hundred entries.
  for (auto it = live_.rbegin(); it != live_.rend(); ++it) {
    if (it->first == p) {
      trace_[it->second].release_tick = ++tick_;
      live_.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<ArenaTraceEvent> Arena::take_trace() {
  tracing_ = false;
  live_.clear();
  return std::move(trace_);
}

void Arena::set_plan(MemoryPlan plan) {
  if (tracing_) throw std::logic_error("Arena: set_plan while tracing");
  if (plan.offsets.size() != plan.sizes.size()) {
    throw std::invalid_argument("Arena: malformed plan");
  }
  ensure_single_block(plan.peak_bytes);
  plan_ = std::move(plan);
  planned_ = true;
  replay_ = 0;
  block_ = 0;
  offset_ = 0;
  used_ = 0;
  guards_.clear();
}

void Arena::clear_plan() {
  planned_ = false;
  plan_ = MemoryPlan{};
  replay_ = 0;
  block_ = 0;
  offset_ = 0;
  used_ = 0;
}

namespace {

thread_local Arena* t_current_arena = nullptr;

}  // namespace

ArenaScope::ArenaScope(Arena& arena) noexcept : prev_(t_current_arena) {
  t_current_arena = &arena;
}

ArenaScope::~ArenaScope() { t_current_arena = prev_; }

Arena* current_arena() noexcept { return t_current_arena; }

Arena& thread_scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace dlscale::util
