#include "dlscale/util/simd.hpp"

#include <atomic>

#include "dlscale/util/env.hpp"

namespace dlscale::util {

namespace {

// -1 = not yet initialised. Relaxed ordering is enough: the value is
// write-once from env (or an explicit test override) and every reader
// only branches on it.
std::atomic<int> g_active{-1};
std::atomic<int> g_startup{-1};

SimdLevel clamp_to_detected(SimdLevel level) noexcept {
  const SimdLevel cap = detected_simd_level();
  return static_cast<int>(level) <= static_cast<int>(cap) ? level : cap;
}

SimdLevel init_from_env() {
  // DLSCALE_SIMD=0 pins the scalar twins (bitwise identical, so this is
  // a pure perf/debug knob); default lets CPUID pick.
  const bool enabled = env_bool("DLSCALE_SIMD", true);
  return enabled ? detected_simd_level() : SimdLevel::kScalar;
}

}  // namespace

SimdLevel detected_simd_level() noexcept {
#if DLSCALE_SIMD_X86
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

bool detected_f16c() noexcept {
#if DLSCALE_SIMD_X86
  static const bool f16c =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
  return f16c;
#else
  return false;
#endif
}

SimdLevel simd_level() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    const int level = static_cast<int>(init_from_env());
    int expected = -1;
    g_startup.compare_exchange_strong(expected, level, std::memory_order_relaxed);
    expected = -1;
    g_active.compare_exchange_strong(expected, level, std::memory_order_relaxed);
    v = g_active.load(std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(v);
}

SimdLevel simd_startup_level() {
  simd_level();  // force env read if it has not happened yet
  return static_cast<SimdLevel>(g_startup.load(std::memory_order_relaxed));
}

SimdLevel set_simd_level(SimdLevel level) {
  simd_level();  // pin the startup record before overriding
  const SimdLevel applied = clamp_to_detected(level);
  g_active.store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

bool simd_f16c() { return simd_level() == SimdLevel::kAvx2 && detected_f16c(); }

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace dlscale::util
