#include "dlscale/util/bf16.hpp"

#include <cstring>

#include "dlscale/util/simd.hpp"

#if DLSCALE_SIMD_X86
#include <immintrin.h>
#endif

namespace dlscale::util {

std::uint16_t float_to_bf16(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof bits);

  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x7FFFFFu) != 0u) {
    // NaN: truncate the payload, but force it nonzero — a NaN whose
    // payload lives entirely in the discarded low 16 bits would otherwise
    // truncate to an infinity pattern.
    std::uint16_t narrowed = static_cast<std::uint16_t>(bits >> 16);
    if ((narrowed & 0x7Fu) == 0u) narrowed |= 0x40u;
    return narrowed;
  }

  // Round-to-nearest-even by bias-add: 0x7FFF plus the round-to-even tie
  // breaker. A carry out of the mantissa increments the exponent, which is
  // exactly RNE's behaviour at binade boundaries; inf stays inf because
  // its low 16 bits are zero, so the bias never carries into bit 16.
  const std::uint32_t rounding_bias = 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>((bits + rounding_bias) >> 16);
}

float bf16_to_float(std::uint16_t bf16) noexcept {
  const std::uint32_t bits = static_cast<std::uint32_t>(bf16) << 16;
  float value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

// ---- array sweeps ---------------------------------------------------------

namespace {

void floats_to_bf16s_scalar(const float* src, std::uint16_t* dst,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_bf16(src[i]);
}

void bf16s_to_floats_scalar(const std::uint16_t* src, float* dst,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_float(src[i]);
}

#if DLSCALE_SIMD_X86

#define DLSCALE_BF16_AVX2 __attribute__((target("avx2")))

// The narrow sweep is pure integer arithmetic, so the vector path can
// reproduce the scalar twin exactly on every input — including NaNs.
// Per-lane it computes the same two branches: the RNE bias-add for
// non-NaN lanes and the payload-preserving truncation for NaN lanes,
// blended by a NaN mask.
DLSCALE_BF16_AVX2 void floats_to_bf16s_avx2(const float* src,
                                            std::uint16_t* dst,
                                            std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i inf_bits = _mm256_set1_epi32(0x7F800000);
  const __m256i bias_base = _mm256_set1_epi32(0x7FFF);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i low7 = _mm256_set1_epi32(0x7F);
  const __m256i quiet_bit = _mm256_set1_epi32(0x40);
  const __m256i zero = _mm256_setzero_si256();

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i abs = _mm256_and_si256(bits, abs_mask);
    // NaN <=> magnitude bits strictly above the infinity pattern.
    const __m256i is_nan = _mm256_cmpgt_epi32(abs, inf_bits);

    // Non-NaN lanes: (bits + 0x7FFF + lsb(bits >> 16)) >> 16.
    const __m256i lsb =
        _mm256_and_si256(_mm256_srli_epi32(bits, 16), one);
    const __m256i rounded = _mm256_srli_epi32(
        _mm256_add_epi32(bits, _mm256_add_epi32(bias_base, lsb)), 16);

    // NaN lanes: truncate and force the 7-bit payload nonzero.
    __m256i truncated = _mm256_srli_epi32(bits, 16);
    const __m256i payload_zero =
        _mm256_cmpeq_epi32(_mm256_and_si256(truncated, low7), zero);
    truncated = _mm256_or_si256(
        truncated, _mm256_and_si256(payload_zero, quiet_bit));

    const __m256i narrowed = _mm256_blendv_epi8(rounded, truncated, is_nan);

    // 8 x u32 (each <= 0xFFFF) -> 8 x u16. packus interleaves the 128-bit
    // lanes, so permute them back into order before the 128-bit store.
    const __m256i packed = _mm256_permute4x64_epi64(
        _mm256_packus_epi32(narrowed, narrowed), 0xD8);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm256_castsi256_si128(packed));
  }
  for (; i < n; ++i) dst[i] = float_to_bf16(src[i]);
}

DLSCALE_BF16_AVX2 void bf16s_to_floats_avx2(const std::uint16_t* src,
                                            float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i halves =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i widened =
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(halves), 16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), widened);
  }
  for (; i < n; ++i) dst[i] = bf16_to_float(src[i]);
}

#undef DLSCALE_BF16_AVX2

#endif  // DLSCALE_SIMD_X86

#if DLSCALE_SIMD_X86
inline bool use_avx2() { return simd_level() == SimdLevel::kAvx2; }
#endif

}  // namespace

void floats_to_bf16s(const float* src, std::uint16_t* dst, std::size_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return floats_to_bf16s_avx2(src, dst, n);
#endif
  floats_to_bf16s_scalar(src, dst, n);
}

void bf16s_to_floats(const std::uint16_t* src, float* dst, std::size_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return bf16s_to_floats_avx2(src, dst, n);
#endif
  bf16s_to_floats_scalar(src, dst, n);
}

}  // namespace dlscale::util
