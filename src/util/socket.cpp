#include "dlscale/util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace dlscale::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  const sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) break;
    if (errno == EINTR) continue;
    throw_errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  // Request/response bodies are written in one send_all; without
  // TCP_NODELAY the final partial segment of a request can sit in the
  // Nagle buffer waiting for an ACK the server will not produce.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

bool Socket::send_all(const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

long Socket::recv_some(void* buf, std::size_t n) noexcept {
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_recv_timeout_ms(int ms) noexcept {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

ListenSocket::ListenSocket(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Socket> ListenSocket::accept() {
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      const int one = 1;
      (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(conn);
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;  // transient
    // EINVAL: unblock()'s shutdown() landed — orderly exit. Anything
    // else (EMFILE, EBADF, ...) also ends the loop; the server treats a
    // dead acceptor as drain-and-stop rather than spinning.
    return std::nullopt;
  }
}

void ListenSocket::unblock() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

}  // namespace dlscale::util
