#include "dlscale/util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "dlscale/util/env.hpp"

namespace dlscale::util {
namespace {

std::atomic<LogLevel> g_level{[] {
  const auto env = env_string("DLSCALE_LOG_LEVEL");
  return env ? parse_log_level(*env) : LogLevel::kInfo;
}()};

thread_local int t_rank = -1;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view text) noexcept {
  auto eq = [&](std::string_view want) {
    if (text.size() != want.size()) return false;
    for (size_t i = 0; i < text.size(); ++i) {
      const char c = text[i] >= 'A' && text[i] <= 'Z' ? char(text[i] - 'A' + 'a') : text[i];
      if (c != want[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::kTrace;
  if (eq("debug")) return LogLevel::kDebug;
  if (eq("info")) return LogLevel::kInfo;
  if (eq("warn") || eq("warning")) return LogLevel::kWarn;
  if (eq("error")) return LogLevel::kError;
  if (eq("off") || eq("none")) return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_thread_log_rank(int rank) noexcept { t_rank = rank; }

namespace detail {

void emit(LogLevel level, std::string_view message) {
  using clock = std::chrono::system_clock;
  const auto now = clock::now();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now.time_since_epoch()).count() %
      1'000'000;
  const std::time_t secs = clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);

  std::lock_guard<std::mutex> lock(emit_mutex());
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%02d:%02d:%02d.%06ld] [%s] [rank %d] %.*s\n", tm_buf.tm_hour,
                 tm_buf.tm_min, tm_buf.tm_sec, static_cast<long>(us), level_name(level), t_rank,
                 static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "[%02d:%02d:%02d.%06ld] [%s] %.*s\n", tm_buf.tm_hour, tm_buf.tm_min,
                 tm_buf.tm_sec, static_cast<long>(us), level_name(level),
                 static_cast<int>(message.size()), message.data());
  }
}

}  // namespace detail
}  // namespace dlscale::util
