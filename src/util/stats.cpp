#include "dlscale/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dlscale::util {

void RunningStats::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  // Welford's online update keeps the variance numerically stable.
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples) total += s;
  return total / static_cast<double>(samples.size());
}

double geomean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) {
    if (s <= 0.0) return 0.0;
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace dlscale::util
