#include "dlscale/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dlscale::util {

void RunningStats::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  // Welford's online update keeps the variance numerically stable.
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

namespace {
// Bucketed range: one underflow bucket for (-inf, 1), then
// kDecades * buckets_per_decade geometric buckets over [1, 10^kDecades),
// then one overflow bucket. Nine decades in microseconds covers 1us..~17min.
constexpr int kDecades = 9;
}  // namespace

Histogram::Histogram(int buckets_per_decade)
    : buckets_per_decade_(std::max(1, buckets_per_decade)),
      buckets_(static_cast<std::size_t>(kDecades) * buckets_per_decade_ + 2, 0) {}

std::size_t Histogram::bucket_index(double value) const {
  if (!(value >= 1.0)) return 0;  // underflow (also catches NaN)
  const double pos = std::log10(value) * buckets_per_decade_;
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx + 1, buckets_.size() - 1);
}

double Histogram::bucket_lower(std::size_t index) const {
  if (index == 0) return 0.0;
  return std::pow(10.0, static_cast<double>(index - 1) / buckets_per_decade_);
}

void Histogram::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() != buckets_.size()) return;  // layout mismatch: drop
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const auto next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      // Interpolate within the bucket, clamping to the observed extremes so
      // p0/p100 are exact and a single-bucket histogram reports sane values.
      const double lo = std::max(bucket_lower(i), min_);
      const double hi = std::min(i + 1 < buckets_.size() ? bucket_lower(i + 1) : max_, max_);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return max_;
}

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples) total += s;
  return total / static_cast<double>(samples.size());
}

double geomean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) {
    if (s <= 0.0) return 0.0;
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace dlscale::util
