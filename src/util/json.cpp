#include "dlscale/util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace dlscale::util::json {

namespace {

[[noreturn]] void throw_kind_mismatch(Value::Kind want, Value::Kind got, const std::string& where) {
  auto name = [](Value::Kind k) -> const char* {
    switch (k) {
      case Value::Kind::kNull: return "null";
      case Value::Kind::kBool: return "bool";
      case Value::Kind::kNumber: return "number";
      case Value::Kind::kString: return "string";
      case Value::Kind::kArray: return "array";
      case Value::Kind::kObject: return "object";
    }
    return "?";
  };
  throw SchemaError(where + ": expected " + std::string(name(want)) + ", got " + name(got));
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw_kind_mismatch(Kind::kBool, kind_, "as_bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw_kind_mismatch(Kind::kNumber, kind_, "as_number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw_kind_mismatch(Kind::kString, kind_, "as_string");
  return string_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) throw_kind_mismatch(Kind::kArray, kind_, "as_array");
  return array_;
}

Value::Array& Value::as_array() {
  if (kind_ != Kind::kArray) throw_kind_mismatch(Kind::kArray, kind_, "as_array");
  return array_;
}

const std::vector<std::string>& Value::keys() const {
  if (kind_ != Kind::kObject) throw_kind_mismatch(Kind::kObject, kind_, "keys");
  return object_keys_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) throw_kind_mismatch(Kind::kObject, kind_, "find");
  for (std::size_t i = 0; i < object_keys_.size(); ++i) {
    if (object_keys_[i] == key) return &object_values_[i];
  }
  return nullptr;
}

void Value::set(std::string key, Value value) {
  if (kind_ != Kind::kObject) throw_kind_mismatch(Kind::kObject, kind_, "set");
  for (std::size_t i = 0; i < object_keys_.size(); ++i) {
    if (object_keys_[i] == key) {
      object_values_[i] = std::move(value);
      return;
    }
  }
  object_keys_.push_back(std::move(key));
  object_values_.push_back(std::move(value));
}

std::size_t Value::member_count() const {
  if (kind_ != Kind::kObject) throw_kind_mismatch(Kind::kObject, kind_, "member_count");
  return object_values_.size();
}

void Value::push_back(Value value) {
  if (kind_ != Kind::kArray) throw_kind_mismatch(Kind::kArray, kind_, "push_back");
  array_.push_back(std::move(value));
}

void Value::copy_from(const Value& other) {
  kind_ = other.kind_;
  bool_ = other.bool_;
  number_ = other.number_;
  string_ = other.string_;
  array_ = other.array_;
  object_keys_ = other.object_keys_;
  object_values_ = other.object_values_;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the full grammar, hard depth limit.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const { throw ParseError(what, pos_); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v = Value(nullptr);
        break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v = Value(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v = Value(false);
        break;
      case '"':
        v = Value(parse_string());
        break;
      case '[':
        v = parse_array();
        break;
      case '{':
        v = parse_object();
        break;
      default:
        v = parse_number();
        break;
    }
    --depth_;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': append_unicode_escape(out); break;
          default: fail("invalid escape character");
        }
        continue;
      }
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate; need the pair
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate in \\u escape");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate in \\u escape");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero must stand alone
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    double out = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      fail("unparsable number");
    }
    if (!std::isfinite(out)) {
      pos_ = start;
      fail("number out of double range");
    }
    return Value(out);
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      if (v.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void write_escaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
}

void write_number(double d, std::string& out) {
  if (!std::isfinite(d)) throw Error("cannot write non-finite number as JSON");
  char buf[32];
  // Shortest round-trip form: "1", "0.25", "1e30". Integral doubles come
  // out without a fraction part, so counters look like counters.
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  if (ec != std::errc()) throw Error("number formatting failed");
  out.append(buf, ptr);
}

void write_value(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  auto newline_pad = [&](int levels) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      write_number(v.as_number(), out);
      break;
    case Value::Kind::kString:
      write_escaped(v.as_string(), out);
      break;
    case Value::Kind::kArray: {
      const auto& items = v.as_array();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_pad(depth + 1);
        write_value(items[i], out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      const auto& keys = v.keys();
      if (keys.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_pad(depth + 1);
        write_escaped(keys[i], out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(v.member(i), out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

std::string write(const Value& value) {
  std::string out;
  write_value(value, out, /*indent=*/-1, /*depth=*/0);
  return out;
}

std::string write_pretty(const Value& value, int indent) {
  std::string out;
  write_value(value, out, indent < 0 ? 0 : indent, 0);
  out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// Field-binding support.
// ---------------------------------------------------------------------------

namespace detail {

void expect_kind(const Value& value, Value::Kind kind, const std::string& context) {
  if (value.kind() == kind) return;
  auto name = [](Value::Kind k) -> const char* {
    switch (k) {
      case Value::Kind::kNull: return "null";
      case Value::Kind::kBool: return "bool";
      case Value::Kind::kNumber: return "number";
      case Value::Kind::kString: return "string";
      case Value::Kind::kArray: return "array";
      case Value::Kind::kObject: return "object";
    }
    return "?";
  };
  throw SchemaError(context + ": expected " + name(kind) + ", got " + name(value.kind()));
}

double checked_integer(const Value& value, const std::string& context) {
  expect_kind(value, Value::Kind::kNumber, context);
  const double d = value.as_number();
  if (std::nearbyint(d) != d) {
    throw SchemaError(context + ": expected integer, got non-integral number");
  }
  return d;
}

void throw_unknown_field(const std::string& context, const std::string& key) {
  throw SchemaError(context + ": unknown field \"" + key + "\"");
}

}  // namespace detail

}  // namespace dlscale::util::json
