#include "dlscale/util/fp16.hpp"

#include <cstring>

namespace dlscale::util {

std::uint16_t float_to_half(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof bits);

  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFF) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0u));
  }

  // Re-bias: half exponent = float exponent - 127 + 15.
  const int new_exponent = static_cast<int>(exponent) - 127 + 15;
  if (new_exponent >= 0x1F) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (new_exponent <= 0) {
    // Subnormal half (or underflow to zero). Shift in the implicit bit and
    // round to nearest even.
    if (new_exponent < -10) return sign;  // too small even for subnormals
    mantissa |= 0x800000u;
    const int shift = 14 - new_exponent;  // 24-bit mantissa -> 10-bit field
    const std::uint32_t rounded =
        (mantissa >> shift) +
        (((mantissa >> (shift - 1)) & 1u) &
         (((mantissa & ((1u << (shift - 1)) - 1u)) != 0 || ((mantissa >> shift) & 1u)) ? 1u : 0u));
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal half: round the 23-bit mantissa to 10 bits, nearest even.
  std::uint32_t half_bits =
      static_cast<std::uint32_t>(new_exponent << 10) | (mantissa >> 13);
  const std::uint32_t round_bit = (mantissa >> 12) & 1u;
  const std::uint32_t sticky = (mantissa & 0xFFFu) != 0;
  if (round_bit && (sticky || (half_bits & 1u))) ++half_bits;  // may carry into exponent: fine
  return static_cast<std::uint16_t>(sign | half_bits);
}

float half_to_float(std::uint16_t half) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;

  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | static_cast<std::uint32_t>((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace dlscale::util
