#include "dlscale/util/fp16.hpp"

#include <cstring>

#include "dlscale/util/simd.hpp"

#if DLSCALE_SIMD_X86
#include <immintrin.h>
#endif

namespace dlscale::util {

std::uint16_t float_to_half(float value) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof bits);

  const std::uint16_t sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFF) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0u));
  }

  // Re-bias: half exponent = float exponent - 127 + 15.
  const int new_exponent = static_cast<int>(exponent) - 127 + 15;
  if (new_exponent >= 0x1F) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (new_exponent <= 0) {
    // Subnormal half (or underflow to zero). Shift in the implicit bit and
    // round to nearest even.
    if (new_exponent < -10) return sign;  // too small even for subnormals
    mantissa |= 0x800000u;
    const int shift = 14 - new_exponent;  // 24-bit mantissa -> 10-bit field
    const std::uint32_t rounded =
        (mantissa >> shift) +
        (((mantissa >> (shift - 1)) & 1u) &
         (((mantissa & ((1u << (shift - 1)) - 1u)) != 0 || ((mantissa >> shift) & 1u)) ? 1u : 0u));
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normal half: round the 23-bit mantissa to 10 bits, nearest even.
  std::uint32_t half_bits =
      static_cast<std::uint32_t>(new_exponent << 10) | (mantissa >> 13);
  const std::uint32_t round_bit = (mantissa >> 12) & 1u;
  const std::uint32_t sticky = (mantissa & 0xFFFu) != 0;
  if (round_bit && (sticky || (half_bits & 1u))) ++half_bits;  // may carry into exponent: fine
  return static_cast<std::uint16_t>(sign | half_bits);
}

float half_to_float(std::uint16_t half) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;

  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | static_cast<std::uint32_t>((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

// ---- array sweeps ---------------------------------------------------------

namespace {

void floats_to_halves_scalar(const float* src, std::uint16_t* dst,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_half(src[i]);
}

void halves_to_floats_scalar(const std::uint16_t* src, float* dst,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

void halves_to_floats_div_scalar(const std::uint16_t* src, float* dst,
                                 std::size_t n, float divisor) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]) / divisor;
}

void halves_add_inplace_scalar(std::uint16_t* acc, const std::uint16_t* in,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = half_add(acc[i], in[i]);
}

#if DLSCALE_SIMD_X86

// Hardware F16C agrees with float_to_half / half_to_float bit-for-bit on
// every non-NaN input (checked exhaustively: all 2^32 floats through
// VCVTPS2PH, all 2^16 halves through VCVTPH2PS). NaNs are the one gap —
// VCVTPS2PH preserves payloads where the software converter canonicalises
// to 0x200, and VCVTPH2PS quiets signalling NaNs — so any 8-lane block
// holding a maximum-exponent lane (inf or NaN) runs the scalar twin
// instead. Infinities would convert identically, but folding them into the
// same guard keeps the check to one compare per block.

#define DLSCALE_F16C __attribute__((target("avx2,f16c")))

DLSCALE_F16C void floats_to_halves_f16c(const float* src, std::uint16_t* dst,
                                        std::size_t n) {
  const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m256i bits = _mm256_castps_si256(v);
    const __m256i special =
        _mm256_cmpeq_epi32(_mm256_and_si256(bits, exp_mask), exp_mask);
    if (_mm256_movemask_epi8(special) != 0) {
      for (std::size_t j = i; j < i + 8; ++j) dst[j] = float_to_half(src[j]);
      continue;
    }
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  for (; i < n; ++i) dst[i] = float_to_half(src[i]);
}

DLSCALE_F16C void halves_to_floats_f16c(const std::uint16_t* src, float* dst,
                                        std::size_t n) {
  const __m128i exp_mask = _mm_set1_epi16(0x7C00);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i special =
        _mm_cmpeq_epi16(_mm_and_si128(h, exp_mask), exp_mask);
    if (_mm_movemask_epi8(special) != 0) {
      for (std::size_t j = i; j < i + 8; ++j) dst[j] = half_to_float(src[j]);
      continue;
    }
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = half_to_float(src[i]);
}

DLSCALE_F16C void halves_to_floats_div_f16c(const std::uint16_t* src,
                                            float* dst, std::size_t n,
                                            float divisor) {
  const __m128i exp_mask = _mm_set1_epi16(0x7C00);
  const __m256 div = _mm256_set1_ps(divisor);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i special =
        _mm_cmpeq_epi16(_mm_and_si128(h, exp_mask), exp_mask);
    if (_mm_movemask_epi8(special) != 0) {
      for (std::size_t j = i; j < i + 8; ++j)
        dst[j] = half_to_float(src[j]) / divisor;
      continue;
    }
    _mm256_storeu_ps(dst + i, _mm256_div_ps(_mm256_cvtph_ps(h), div));
  }
  for (; i < n; ++i) dst[i] = half_to_float(src[i]) / divisor;
}

DLSCALE_F16C void halves_add_inplace_f16c(std::uint16_t* acc,
                                          const std::uint16_t* in,
                                          std::size_t n) {
  const __m128i exp_mask = _mm_set1_epi16(0x7C00);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i ha =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i hb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i special =
        _mm_or_si128(_mm_cmpeq_epi16(_mm_and_si128(ha, exp_mask), exp_mask),
                     _mm_cmpeq_epi16(_mm_and_si128(hb, exp_mask), exp_mask));
    if (_mm_movemask_epi8(special) != 0) {
      for (std::size_t j = i; j < i + 8; ++j) acc[j] = half_add(acc[j], in[j]);
      continue;
    }
    // Two finite halves sum to a finite float (max 2 * 65504), and the
    // exhaustive check covers every finite float, so no output guard is
    // needed.
    const __m256 sum = _mm256_add_ps(_mm256_cvtph_ps(ha), _mm256_cvtph_ps(hb));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(acc + i),
        _mm256_cvtps_ph(sum, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  for (; i < n; ++i) acc[i] = half_add(acc[i], in[i]);
}

#endif  // DLSCALE_SIMD_X86

}  // namespace

void floats_to_halves(const float* src, std::uint16_t* dst, std::size_t n) {
#if DLSCALE_SIMD_X86
  if (simd_f16c()) return floats_to_halves_f16c(src, dst, n);
#endif
  floats_to_halves_scalar(src, dst, n);
}

void halves_to_floats(const std::uint16_t* src, float* dst, std::size_t n) {
#if DLSCALE_SIMD_X86
  if (simd_f16c()) return halves_to_floats_f16c(src, dst, n);
#endif
  halves_to_floats_scalar(src, dst, n);
}

void halves_to_floats_div(const std::uint16_t* src, float* dst, std::size_t n,
                          float divisor) {
#if DLSCALE_SIMD_X86
  if (simd_f16c()) return halves_to_floats_div_f16c(src, dst, n, divisor);
#endif
  halves_to_floats_div_scalar(src, dst, n, divisor);
}

void halves_add_inplace(std::uint16_t* acc, const std::uint16_t* in,
                        std::size_t n) {
#if DLSCALE_SIMD_X86
  if (simd_f16c()) return halves_add_inplace_f16c(acc, in, n);
#endif
  halves_add_inplace_scalar(acc, in, n);
}

}  // namespace dlscale::util
