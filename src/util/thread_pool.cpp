#include "dlscale/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "dlscale/util/env.hpp"

namespace dlscale::util {

namespace {

thread_local bool t_in_worker = false;

/// Shared state of one parallel_for call. Lives on the *caller's stack*:
/// the caller enqueues a pointer, participates, waits for completion,
/// then unregisters the job and waits for every worker still holding the
/// pointer to drop it (holders protocol) before the frame unwinds.
struct Job {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t chunks = 0;
  void (*fn)(void*, std::int64_t, std::int64_t) = nullptr;
  void* ctx = nullptr;

  std::atomic<std::int64_t> next{0};  ///< next unclaimed chunk index
  std::atomic<std::int64_t> done{0};  ///< chunks fully executed
  int holders = 0;  ///< workers inside work() (guarded by pool mutex)

  std::mutex mutex;
  std::condition_variable all_done;
  std::exception_ptr error;  ///< first exception thrown by fn

  /// Claims and runs chunks until none are left. Returns after
  /// contributing; does not wait for other participants.
  void work() {
    for (;;) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(lo + grain, end);
      try {
        fn(ctx, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(mutex);  // pair with the waiter
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;     ///< workers: new job / stopping
  std::condition_variable drained;  ///< callers: a worker dropped a hold
  // Ring over a vector: pop advances `head`, push appends; when the ring
  // empties it rewinds to index 0 with clear() (capacity kept), so the
  // steady state never touches the heap — a deque would alloc/free a
  // node block every few dozen push/pop cycles.
  std::vector<Job*> queue;
  std::size_t head = 0;
  std::vector<std::thread> workers;
  bool stopping = false;

  void pop_front_locked() {
    ++head;
    if (head == queue.size()) {
      queue.clear();
      head = 0;
    }
  }

  void remove_locked(Job* job) {
    for (std::size_t i = head; i < queue.size(); ++i) {
      if (queue[i] == job) {
        if (i == head) {
          pop_front_locked();
        } else {
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        }
        return;
      }
    }
  }

  void worker_loop() {
    t_in_worker = true;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return stopping || head < queue.size(); });
        if (stopping && head >= queue.size()) return;
        job = queue[head];
        // Keep the job visible until its chunks run out so several
        // workers can join it; pop only when nothing is left to claim.
        if (job->next.load(std::memory_order_relaxed) >= job->chunks) {
          pop_front_locked();
          continue;
        }
        ++job->holders;  // the caller may not free the Job while held
      }
      job->work();
      {
        std::lock_guard<std::mutex> lock(mutex);
        --job->holders;
        if (head < queue.size() && queue[head] == job) pop_front_locked();
      }
      drained.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl), threads_(std::max(1, threads)) {
  const int workers = threads_ - 1;
  impl_->workers.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

bool ThreadPool::in_worker() noexcept { return t_in_worker; }

void ThreadPool::run_chunked(std::int64_t begin, std::int64_t end, std::int64_t grain,
                             ChunkFn fn, void* ctx) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t range = end - begin;
  // Serial paths: single-participant pool, a range that fits one chunk,
  // or a nested call from a worker (running inline avoids deadlock).
  // Chunk-by-chunk even when serial, so the chunking a caller observes
  // is a pure function of (begin, end, grain) at every pool size.
  if (threads_ <= 1 || range <= grain || t_in_worker) {
    for (std::int64_t lo = begin; lo < end; lo += grain) {
      fn(ctx, lo, std::min(lo + grain, end));
    }
    return;
  }

  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.chunks = (range + grain - 1) / grain;
  job.fn = fn;
  job.ctx = ctx;

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(&job);
  }
  impl_->wake.notify_all();

  // The caller participates; when workers are saturated by other
  // callers' jobs this loop simply executes every chunk itself.
  job.work();

  {
    std::unique_lock<std::mutex> lock(job.mutex);
    job.all_done.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.chunks;
    });
  }

  // Every chunk ran, but the stack-allocated Job may still be referenced:
  // it can sit in the queue, and workers that joined late may be inside
  // work() draining an empty claim. Unregister it and wait out holders.
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->remove_locked(&job);
    impl_->drained.wait(lock, [&] { return job.holders == 0; });
  }

  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_pool_threads = 0;  ///< 0 = not yet configured

int default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const auto knob = env_int("DLSCALE_NUM_THREADS", hw == 0 ? 1 : static_cast<std::int64_t>(hw));
  return static_cast<int>(std::max<std::int64_t>(1, knob));
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    if (g_pool_threads == 0) g_pool_threads = default_thread_count();
    g_pool = std::make_unique<ThreadPool>(g_pool_threads);
  }
  return *g_pool;
}

int global_thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool_threads == 0) g_pool_threads = default_thread_count();
  return g_pool_threads;
}

void set_global_thread_count(int threads) {
  threads = std::max(1, threads);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool_threads == threads && g_pool) return;
  g_pool.reset();  // joins workers; callers must be quiescent
  g_pool_threads = threads;
}

}  // namespace dlscale::util
