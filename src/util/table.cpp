#include "dlscale/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dlscale::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) throw std::logic_error("Table: header must be set before rows");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width " + std::to_string(row.size()) +
                                " does not match header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string Table::num(long long value) { return std::to_string(value); }

std::string Table::pct(double fraction01, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction01 * 100.0);
  return buf;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto rule = [&] {
    out << '+';
    for (auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    emit_row(header_);
    rule();
  }
  for (const auto& row : rows_) emit_row(row);
  rule();
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::FILE* stream) const {
  const std::string rendered = to_ascii();
  std::fwrite(rendered.data(), 1, rendered.size(), stream);
  std::fflush(stream);
}

}  // namespace dlscale::util
