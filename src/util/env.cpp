#include "dlscale/util/env.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dlscale::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  std::int64_t value = 0;
  const auto* begin = raw->data();
  const auto* end = begin + raw->size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{} || result.ptr != end) return fallback;
  return value;
}

double env_double(const std::string& name, double fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') return fallback;
  return value;
}

bool env_bool(const std::string& name, bool fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  std::string lowered;
  lowered.reserve(raw->size());
  for (char c : *raw) lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") return true;
  if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") return false;
  return fallback;
}

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{}) return std::nullopt;
  std::string_view suffix(result.ptr, static_cast<size_t>(end - result.ptr));
  auto upper = [](std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    return out;
  };
  const std::string s = upper(suffix);
  if (s.empty() || s == "B") return value;
  if (s == "K" || s == "KB" || s == "KIB") return value << 10;
  if (s == "M" || s == "MB" || s == "MIB") return value << 20;
  if (s == "G" || s == "GB" || s == "GIB") return value << 30;
  return std::nullopt;
}

std::uint64_t env_bytes(const std::string& name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw) return fallback;
  const auto parsed = parse_bytes(*raw);
  return parsed.value_or(fallback);
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0 || std::floor(value) == value) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace dlscale::util
