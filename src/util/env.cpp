#include "dlscale/util/env.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace dlscale::util {

namespace {

// Registry of effective knob values (see EnvRecord). Function-local
// statics so the registry is usable from other static initialisers.
std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, EnvRecord>& registry() {
  static std::map<std::string, EnvRecord> records;
  return records;
}

void record(const std::string& name, std::string value, bool from_env) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[name] = EnvRecord{name, std::move(value), from_env};
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

}  // namespace

std::optional<std::string> env_string(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) {
    record(name, "", false);
    return std::nullopt;
  }
  record(name, value, true);
  return std::string(value);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto raw = env_string(name);
  std::int64_t value = fallback;
  bool parsed = false;
  if (raw) {
    const auto* begin = raw->data();
    const auto* end = begin + raw->size();
    std::int64_t out = 0;
    const auto result = std::from_chars(begin, end, out);
    if (result.ec == std::errc{} && result.ptr == end) {
      value = out;
      parsed = true;
    }
  }
  record(name, std::to_string(value), parsed);
  return value;
}

double env_double(const std::string& name, double fallback) {
  const auto raw = env_string(name);
  double value = fallback;
  bool parsed = false;
  if (raw) {
    char* end = nullptr;
    const double out = std::strtod(raw->c_str(), &end);
    if (end != raw->c_str() && *end == '\0') {
      value = out;
      parsed = true;
    }
  }
  record(name, format_double(value), parsed);
  return value;
}

bool env_bool(const std::string& name, bool fallback) {
  const auto raw = env_string(name);
  bool value = fallback;
  bool parsed = false;
  if (raw) {
    std::string lowered;
    lowered.reserve(raw->size());
    for (char c : *raw) {
      lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") {
      value = true;
      parsed = true;
    } else if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") {
      value = false;
      parsed = true;
    }
  }
  record(name, value ? "true" : "false", parsed);
  return value;
}

std::optional<std::uint64_t> parse_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto result = std::from_chars(begin, end, value);
  if (result.ec != std::errc{}) return std::nullopt;
  std::string_view suffix(result.ptr, static_cast<size_t>(end - result.ptr));
  auto upper = [](std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    return out;
  };
  const std::string s = upper(suffix);
  if (s.empty() || s == "B") return value;
  if (s == "K" || s == "KB" || s == "KIB") return value << 10;
  if (s == "M" || s == "MB" || s == "MIB") return value << 20;
  if (s == "G" || s == "GB" || s == "GIB") return value << 30;
  return std::nullopt;
}

std::uint64_t env_bytes(const std::string& name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  const auto parsed = raw ? parse_bytes(*raw) : std::nullopt;
  const std::uint64_t value = parsed.value_or(fallback);
  record(name, format_bytes(value), parsed.has_value());
  return value;
}

std::string format_bytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0 || std::floor(value) == value) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::vector<EnvRecord> env_effective() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<EnvRecord> records;
  records.reserve(registry().size());
  for (const auto& [name, entry] : registry()) records.push_back(entry);
  return records;  // std::map iteration is already name-sorted
}

std::string env_dump() {
  const std::vector<EnvRecord> records = env_effective();
  std::size_t width = 0;
  for (const EnvRecord& r : records) width = std::max(width, r.name.size());
  std::string out = "effective environment knobs:\n";
  for (const EnvRecord& r : records) {
    out += "  " + r.name + std::string(width - r.name.size(), ' ') + " = " +
           (r.value.empty() ? "(unset)" : r.value) + (r.from_env ? "  (env)" : "  (default)") +
           "\n";
  }
  return out;
}

}  // namespace dlscale::util
