#include "dlscale/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace dlscale::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::child(std::uint64_t tag) const noexcept {
  // Mix current state with the tag through SplitMix64 so children with
  // different tags are decorrelated even for adjacent tag values.
  std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^ (tag * 0xD6E8FEB86659FD93ull);
  return Rng(splitmix64(sm));
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift with rejection for unbiased bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

}  // namespace dlscale::util
