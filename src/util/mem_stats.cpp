#include "dlscale/util/mem_stats.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dlscale::util {

std::size_t peak_rss_bytes() {
#if defined(__linux__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // kilobytes
#elif defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes
#else
  return 0;
#endif
}

}  // namespace dlscale::util
