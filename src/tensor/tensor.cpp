#include "dlscale/tensor/tensor.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "dlscale/util/arena.hpp"

namespace dlscale::tensor {

namespace {

std::size_t checked_numel(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: dimensions must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

void Shape::assign(const int* dims, std::size_t n) {
  if (n > kMaxDims) throw std::invalid_argument("Shape: at most 4 dimensions");
  ndim_ = static_cast<std::uint8_t>(n);
  for (std::size_t i = 0; i < n; ++i) dims_[i] = dims[i];
}

int Shape::at(std::size_t i) const {
  if (i >= ndim_) throw std::out_of_range("Shape: axis out of range");
  return dims_[i];
}

void Tensor::init_storage(bool zero_fill) {
  if (util::Arena* arena = util::current_arena()) {
    arena_ = arena;
    ptr_ = arena->alloc<float>(numel_);
    if (zero_fill) std::memset(ptr_, 0, numel_ * sizeof(float));
  } else {
    arena_ = nullptr;
    if (zero_fill) {
      owned_.assign(numel_, 0.0f);
    } else {
      owned_.resize(numel_);
    }
    ptr_ = owned_.data();
  }
}

void Tensor::release_storage() noexcept {
  if (arena_ != nullptr) {
    if (arena_->tracing()) arena_->note_release(ptr_);
    arena_ = nullptr;
  }
  ptr_ = nullptr;
  numel_ = 0;
  // owned_ keeps its capacity for reuse by the next assignment.
}

Tensor::Tensor(const Shape& shape) : shape_(shape), numel_(checked_numel(shape)) {
  init_storage(/*zero_fill=*/true);
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), numel_(other.numel_) {
  if (numel_ == 0) return;
  init_storage(/*zero_fill=*/false);
  std::memcpy(ptr_, other.ptr_, numel_ * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  release_storage();
  shape_ = other.shape_;
  numel_ = other.numel_;
  if (numel_ != 0) {
    init_storage(/*zero_fill=*/false);
    std::memcpy(ptr_, other.ptr_, numel_ * sizeof(float));
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      numel_(other.numel_),
      ptr_(other.ptr_),
      owned_(std::move(other.owned_)),
      arena_(other.arena_) {
  // vector move keeps the heap buffer, so ptr_ stays valid in owning
  // mode; in borrowed mode the borrow (and its trace identity) transfers.
  other.shape_ = Shape{};
  other.numel_ = 0;
  other.ptr_ = nullptr;
  other.arena_ = nullptr;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  release_storage();
  shape_ = other.shape_;
  numel_ = other.numel_;
  ptr_ = other.ptr_;
  owned_ = std::move(other.owned_);
  arena_ = other.arena_;
  other.shape_ = Shape{};
  other.numel_ = 0;
  other.ptr_ = nullptr;
  other.arena_ = nullptr;
  return *this;
}

Tensor::~Tensor() { release_storage(); }

std::string Tensor::shape_str() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) out << 'x';
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

Tensor Tensor::reshaped(const Shape& shape) const {
  if (checked_numel(shape) != numel_) {
    throw std::invalid_argument("reshaped: element count mismatch");
  }
  Tensor out(*this);
  out.shape_ = shape;
  return out;
}

void Tensor::fill(float value) {
  for (std::size_t i = 0; i < numel_; ++i) ptr_[i] = value;
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(*this, other)) throw std::invalid_argument("add_: shape mismatch");
  for (std::size_t i = 0; i < numel_; ++i) ptr_[i] += other.ptr_[i];
}

void Tensor::scale_(float s) {
  for (std::size_t i = 0; i < numel_; ++i) ptr_[i] *= s;
}

float Tensor::sum() const {
  double total = 0.0;
  for (std::size_t i = 0; i < numel_; ++i) total += ptr_[i];
  return static_cast<float>(total);
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (std::size_t i = 0; i < numel_; ++i) best = std::max(best, std::abs(ptr_[i]));
  return best;
}

Tensor Tensor::full(const Shape& shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(const Shape& shape, util::Rng& rng, float stddev) {
  Tensor t(shape);
  for (float& x : t.data()) x = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::he_init(const Shape& shape, util::Rng& rng) {
  if (shape.size() != 4) throw std::invalid_argument("he_init: expected (O, C, kh, kw)");
  const double fan_in = static_cast<double>(shape[1]) * shape[2] * shape[3];
  const double stddev = std::sqrt(2.0 / fan_in);
  return randn(shape, rng, static_cast<float>(stddev));
}

bool same_shape(const Tensor& a, const Tensor& b) noexcept { return a.shape() == b.shape(); }

}  // namespace dlscale::tensor
