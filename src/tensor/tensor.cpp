#include "dlscale/tensor/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace dlscale::tensor {

namespace {

std::size_t checked_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: dimensions must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)), data_(checked_numel(shape_)) {}

std::string Tensor::shape_str() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) out << 'x';
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (checked_numel(shape) != numel()) {
    throw std::invalid_argument("reshaped: element count mismatch");
  }
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::add_(const Tensor& other) {
  if (!same_shape(*this, other)) throw std::invalid_argument("add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float s) {
  for (float& x : data_) x *= s;
}

float Tensor::sum() const {
  double total = 0.0;
  for (float x : data_) total += x;
  return static_cast<float>(total);
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (float x : data_) best = std::max(best, std::abs(x));
  return best;
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::he_init(std::vector<int> shape, util::Rng& rng) {
  if (shape.size() != 4) throw std::invalid_argument("he_init: expected (O, C, kh, kw)");
  const double fan_in = static_cast<double>(shape[1]) * shape[2] * shape[3];
  const double stddev = std::sqrt(2.0 / fan_in);
  return randn(std::move(shape), rng, static_cast<float>(stddev));
}

bool same_shape(const Tensor& a, const Tensor& b) noexcept { return a.shape() == b.shape(); }

}  // namespace dlscale::tensor
