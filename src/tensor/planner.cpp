#include "dlscale/tensor/planner.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

namespace dlscale::tensor {

namespace {

struct Placement {
  std::size_t offset = 0;
  std::size_t size = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;  ///< exclusive
};

bool overlaps(const Placement& p, std::uint64_t start, std::uint64_t end) noexcept {
  return p.start < end && start < p.end;
}

}  // namespace

util::MemoryPlan MemoryPlanner::pack(const std::vector<util::ArenaTraceEvent>& trace) {
  util::MemoryPlan plan;
  const std::size_t n = trace.size();
  plan.offsets.assign(n, 0);
  plan.sizes.assign(n, 0);

  const std::uint64_t horizon = 2 * static_cast<std::uint64_t>(n) + 2;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return trace[a].bytes > trace[b].bytes;
  });

  std::vector<Placement> placed;
  placed.reserve(n);
  for (std::size_t idx : order) {
    const util::ArenaTraceEvent& ev = trace[idx];
    const std::uint64_t start = ev.alloc_tick;
    const std::uint64_t end = ev.release_tick == 0 ? horizon : ev.release_tick;

    // First-fit: walk live-overlapping placements in offset order and
    // take the first gap the allocation fits into.
    std::vector<const Placement*> conflicts;
    for (const Placement& p : placed) {
      if (overlaps(p, start, end)) conflicts.push_back(&p);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const Placement* a, const Placement* b) { return a->offset < b->offset; });
    std::size_t offset = 0;
    for (const Placement* p : conflicts) {
      if (offset + ev.bytes <= p->offset) break;
      offset = std::max(offset, p->offset + p->size);
    }

    plan.offsets[idx] = offset;
    plan.sizes[idx] = ev.bytes;
    plan.naive_bytes += ev.bytes;
    plan.peak_bytes = std::max(plan.peak_bytes, offset + ev.bytes);
    placed.push_back({offset, ev.bytes, start, end});
  }
  return plan;
}

}  // namespace dlscale::tensor
