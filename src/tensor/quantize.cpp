#include "dlscale/tensor/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "dlscale/tensor/microkernel.hpp"
#include "dlscale/util/arena.hpp"
#include "dlscale/util/thread_pool.hpp"

namespace dlscale::tensor::quant {

namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Weight quantization ceiling: 2 * 255 * 63 < 32767 keeps the GEMM's
/// pair sums below i16 saturation for every possible activation byte.
constexpr int kWeightQmax = 63;

inline int round_up4(int v) { return (v + 3) & ~3; }

// Panel scratch (quantized activations, byte transposes, i32
// accumulators) comes from the per-thread bump arena as LIFO frames,
// mirroring ops.cpp: caller-side frames span the kernel call, worker-side
// frames span one chunk. Heap-free after warmup.
using ScratchFrame = util::Arena::Frame;

util::Arena& scratch() { return util::thread_scratch_arena(); }

/// Shared dequantization epilogue (scalar on both dispatch paths, so it
/// cannot break the bitwise-identity contract): one row of the i32
/// accumulator (all output channels for one output position) into fp32.
/// The zero-point correction runs in i64 — acc and zp*col_sum can each
/// approach 2^30, so their difference may not fit i32.
inline void dequant_row(const std::int32_t* acc_row, const QuantizedMatrix& w,
                        QuantParams act, const float* bias, float* out,
                        std::size_t out_stride) {
  for (int oc = 0; oc < w.n; ++oc) {
    const std::int64_t corrected =
        static_cast<std::int64_t>(acc_row[oc]) -
        static_cast<std::int64_t>(act.zero_point) *
            w.col_sums[static_cast<std::size_t>(oc)];
    float v = static_cast<float>(corrected) *
              (act.scale * w.scales[static_cast<std::size_t>(oc)]);
    if (bias != nullptr) v += bias[oc];
    out[static_cast<std::size_t>(oc) * out_stride] = v;
  }
}

}  // namespace

QuantParams choose_qparams_u8(Range r) {
  // Zero must be exactly representable (conv padding, ReLU floors).
  const float lo = std::min(r.lo, 0.0f);
  const float hi = std::max(r.hi, 0.0f);
  QuantParams params;
  const float span = hi - lo;
  params.scale = span > 0.0f ? span / 255.0f : 1.0f;
  const float zp = std::nearbyintf(-lo / params.scale);
  params.zero_point = std::min(255, std::max(0, static_cast<std::int32_t>(zp)));
  return params;
}

// ---- observers ------------------------------------------------------------

void MinMaxObserver::observe(const float* values, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = values[i];
    if (!std::isfinite(v)) continue;
    if (!seen_) {
      lo_ = hi_ = v;
      seen_ = true;
    } else {
      lo_ = std::min(lo_, v);
      hi_ = std::max(hi_, v);
    }
  }
}

Range MinMaxObserver::range() const {
  if (!seen_) return {0.0f, 0.0f};
  return {std::min(lo_, 0.0f), std::max(hi_, 0.0f)};
}

PercentileObserver::PercentileObserver(double percentile)
    : percentile_(percentile) {
  if (!(percentile > 50.0 && percentile <= 100.0)) {
    throw std::invalid_argument(
        "PercentileObserver: percentile must be in (50, 100], got " +
        std::to_string(percentile));
  }
}

void PercentileObserver::observe(const float* values, std::size_t n) {
  constexpr std::size_t kMaxSamples = std::size_t{1} << 20;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = values[i];
    if (!std::isfinite(v)) continue;
    if (phase_ == 0) {
      samples_.push_back(v);
      if (samples_.size() >= kMaxSamples) {
        // Thin to every other kept sample and double the stride; the
        // result depends only on the observation sequence.
        std::size_t w = 0;
        for (std::size_t r = 0; r < samples_.size(); r += 2) {
          samples_[w++] = samples_[r];
        }
        samples_.resize(w);
        stride_ *= 2;
      }
    }
    if (++phase_ == stride_) phase_ = 0;
  }
}

Range PercentileObserver::range() const {
  if (samples_.empty()) return {0.0f, 0.0f};
  std::vector<float> sorted(samples_);
  const double tail = (100.0 - percentile_) / 100.0;
  const auto last = static_cast<std::ptrdiff_t>(sorted.size()) - 1;
  const auto lo_idx =
      static_cast<std::ptrdiff_t>(std::floor(tail * static_cast<double>(last)));
  const auto hi_idx = last - lo_idx;
  std::nth_element(sorted.begin(), sorted.begin() + lo_idx, sorted.end());
  const float lo = sorted[static_cast<std::size_t>(lo_idx)];
  std::nth_element(sorted.begin() + lo_idx, sorted.begin() + hi_idx,
                   sorted.end());
  const float hi = sorted[static_cast<std::size_t>(hi_idx)];
  return {std::min(lo, 0.0f), std::max(hi, 0.0f)};
}

// ---- quantized weights ----------------------------------------------------

QuantizedMatrix QuantizedMatrix::from_rows(const float* w, int rows, int k) {
  require(rows >= 0 && k >= 0, "QuantizedMatrix: negative shape");
  require(k <= micro::kGemmS8U8MaxK,
          "QuantizedMatrix: depth exceeds kGemmS8U8MaxK");
  QuantizedMatrix q;
  q.k = k;
  q.n = rows;
  q.scales.resize(static_cast<std::size_t>(rows));
  q.col_sums.assign(static_cast<std::size_t>(rows), 0);

  // Quantize per row, staging row-major B = W^T (k x rows) for the pack.
  std::vector<std::int8_t> b(static_cast<std::size_t>(k) * rows);
  for (int r = 0; r < rows; ++r) {
    const float* wrow = w + static_cast<std::size_t>(r) * k;
    float absmax = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      absmax = std::max(absmax, std::fabs(wrow[kk]));
    }
    const float scale = absmax > 0.0f ? absmax / kWeightQmax : 1.0f;
    q.scales[static_cast<std::size_t>(r)] = scale;
    std::int32_t sum = 0;
    for (int kk = 0; kk < k; ++kk) {
      const auto qv =
          static_cast<std::int32_t>(std::nearbyintf(wrow[kk] / scale));
      const std::int32_t clamped =
          std::min(kWeightQmax, std::max(-kWeightQmax, qv));
      b[static_cast<std::size_t>(kk) * rows + r] =
          static_cast<std::int8_t>(clamped);
      sum += clamped;
    }
    q.col_sums[static_cast<std::size_t>(r)] = sum;
  }

  q.packed.resize(micro::gemm_s8u8_packed_size(k, rows));
  micro::gemm_s8u8_pack_b(b.data(), k, rows, q.packed.data());
  return q;
}

// ---- quantized forwards ---------------------------------------------------

Tensor quantized_matmul(const Tensor& a, const QuantizedMatrix& w,
                        QuantParams act, const Tensor* bias) {
  require(a.ndim() == 2, "quantized_matmul: 2D input required");
  const int m = a.dim(0), k = a.dim(1);
  require(k == w.k, "quantized_matmul: inner dimensions differ");
  if (bias != nullptr) {
    require(static_cast<int>(bias->numel()) == w.n,
            "quantized_matmul: bias size");
  }
  const int kp = round_up4(k);
  Tensor out({m, w.n});
  const float* pa = a.ptr();
  const float* pbias = bias != nullptr ? bias->ptr() : nullptr;
  float* pout = out.ptr();
  const float inv_scale = 1.0f / act.scale;

  util::parallel_for(
      0, m, std::max<std::int64_t>(1, (1 << 16) / std::max(1, k)),
      [&](std::int64_t i0, std::int64_t i1) {
        const auto rows = static_cast<int>(i1 - i0);
        ScratchFrame chunk_frame(scratch());
        std::uint8_t* qa =
            scratch().alloc<std::uint8_t>(static_cast<std::size_t>(rows) * kp);
        for (int i = 0; i < rows; ++i) {
          micro::quantize_u8(pa + (i0 + i) * k,
                             qa + static_cast<std::size_t>(i) * kp, k,
                             inv_scale, act.zero_point);
        }
        std::int32_t* acc =
            scratch().alloc<std::int32_t>(static_cast<std::size_t>(rows) * w.n);
        micro::gemm_s8u8(qa, kp, w.packed.data(), acc, rows, k, w.n);
        for (int i = 0; i < rows; ++i) {
          dequant_row(acc + static_cast<std::size_t>(i) * w.n, w, act, pbias,
                      pout + (i0 + i) * w.n, 1);
        }
      });
  return out;
}

Tensor quantized_conv2d(const Tensor& input, const QuantizedMatrix& weight,
                        const Tensor* bias, const Conv2dSpec& spec, int kh,
                        int kw, QuantParams act) {
  require(input.ndim() == 4, "quantized_conv2d: 4D input required");
  const int batch = input.dim(0), in_c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  require(kh > 0 && kw > 0 && weight.k == in_c * kh * kw,
          "quantized_conv2d: weight depth mismatch");
  const int out_c = weight.n;
  if (bias != nullptr) {
    require(static_cast<int>(bias->numel()) == out_c,
            "quantized_conv2d: bias size");
  }
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "quantized_conv2d: empty output");

  const int kdim = weight.k;
  const int kp = round_up4(kdim);
  const int patch = out_h * out_w;
  // Same sample grouping as the fp32 conv2d (see ops.cpp): coalesce
  // samples until the GEMM sees ~64 columns so narrow ASPP patches fill
  // the vector panels. The integer GEMM computes every output position
  // exactly and independently, so grouping — like batch composition —
  // cannot change any bit of any sample's output.
  constexpr int kTargetGemmCols = 64;
  const int group = std::clamp(kTargetGemmCols / patch, 1, batch);
  const int ngroups = (batch + group - 1) / group;
  const std::size_t group_stride =
      static_cast<std::size_t>(kdim) * patch * group;
  ScratchFrame frame(scratch());
  float* cols =
      scratch().alloc<float>(static_cast<std::size_t>(kdim) * patch * batch);

  // Phase 1: fp32 batched im2col in exactly the fp32 forward's layout —
  // the zero padding it writes quantizes to the zero point below.
  util::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      const std::int64_t g = n / group;
      const int members = std::min(group, batch - static_cast<int>(g) * group);
      im2col(input, static_cast<int>(n), kh, kw, spec,
             cols + group_stride * g +
                 static_cast<std::size_t>(n % group) * patch,
             static_cast<std::size_t>(members) * patch);
    }
  });

  Tensor output({batch, out_c, out_h, out_w});
  const float* pbias = bias != nullptr ? bias->ptr() : nullptr;
  float* pout = output.ptr();
  const float inv_scale = 1.0f / act.scale;

  // Phase 2, per group: quantize the column matrix, transpose it to
  // pixel-major u8 rows (the GEMM's unsigned A operand — activations must
  // be A because maddubs is u8 x s8), run the int8 GEMM, and
  // dequantize-scatter back to NCHW.
  util::parallel_for(0, ngroups, 1, [&](std::int64_t g0, std::int64_t g1) {
    for (std::int64_t g = g0; g < g1; ++g) {
      const int first = static_cast<int>(g) * group;
      const int members = std::min(group, batch - first);
      const int gcols = members * patch;
      const float* gcolsrc = cols + group_stride * g;

      ScratchFrame group_frame(scratch());
      std::uint8_t* qcols =
          scratch().alloc<std::uint8_t>(static_cast<std::size_t>(kdim) * gcols);
      micro::quantize_u8(gcolsrc, qcols,
                         static_cast<std::int64_t>(kdim) * gcols, inv_scale,
                         act.zero_point);

      // Transpose (kdim x gcols) -> (gcols x kp) via the dispatched byte
      // transpose (the scalar form of this movement costs more than the
      // int8 GEMM itself). Pad bytes in [kdim, kp) are left untouched,
      // which the kernel permits: B's pack is zero-padded there,
      // nullifying whatever they hold.
      std::uint8_t* at =
          scratch().alloc<std::uint8_t>(static_cast<std::size_t>(gcols) * kp);
      micro::transpose_u8(qcols, kdim, gcols, at, kp);

      std::int32_t* acc =
          scratch().alloc<std::int32_t>(static_cast<std::size_t>(gcols) * out_c);
      micro::gemm_s8u8(at, kp, weight.packed.data(), acc, gcols, kdim, out_c);

      for (int m = 0; m < members; ++m) {
        for (int pix = 0; pix < patch; ++pix) {
          const std::int32_t* arow =
              acc + (static_cast<std::size_t>(m) * patch + pix) * out_c;
          float* opix = pout +
                        (static_cast<std::size_t>(first + m) * out_c) * patch +
                        pix;
          dequant_row(arow, weight, act, pbias, opix,
                      static_cast<std::size_t>(patch));
        }
      }
    }
  });
  return output;
}

}  // namespace dlscale::tensor::quant
