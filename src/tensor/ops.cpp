#include "dlscale/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "dlscale/tensor/microkernel.hpp"
#include "dlscale/util/arena.hpp"
#include "dlscale/util/thread_pool.hpp"

// Threading model (see DESIGN.md §6): every hot kernel fans out over the
// shared util::ThreadPool via parallel_for. Work is partitioned so that
// each output element is produced by exactly one chunk with a serial
// reduction order fixed by the data layout — chunk boundaries depend only
// on shapes and grain constants, never on the thread count — so results
// are bitwise identical at any DLSCALE_NUM_THREADS setting (the property
// the E6 gradient-parity experiment relies on). Kernels invoked from
// inside a pool worker (nested calls) run inline and serial.
//
// The serial per-chunk inner loops live in tensor::micro
// (src/tensor/microkernel.cpp): runtime-dispatched SIMD micro-kernels
// whose scalar and AVX2 paths are bitwise identical, so neither the
// thread count nor the DLSCALE_SIMD setting changes any result.

namespace dlscale::tensor {

namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Floor/ceil integer division for possibly-negative numerators
/// (positive divisors), used to clip im2col column ranges.
inline int div_floor(int a, int b) {
  const int q = a / b, r = a % b;
  return (r != 0 && (r < 0) != (b < 0)) ? q - 1 : q;
}
inline int div_ceil(int a, int b) { return -div_floor(-a, b); }

/// Chunk length for parallelising `rows` units of `work_per_row` fused
/// mul-adds each: targets ~64k ops per chunk so pool dispatch overhead is
/// amortised. Pure function of the shape — never of the thread count.
inline std::int64_t row_grain(std::int64_t rows, std::int64_t work_per_row) {
  constexpr std::int64_t kTargetOps = 1 << 16;
  if (rows <= 1) return 1;
  const std::int64_t grain =
      work_per_row > 0 ? (kTargetOps + work_per_row - 1) / work_per_row : rows;
  return std::clamp<std::int64_t>(grain, 1, rows);
}

/// Chunk length for the GEMM micro-kernel call sites. The register-blocked
/// kernel runs rows in blocks of four with the B strip shared across the
/// block, so chunks below a few rows forfeit the blocking entirely (a
/// one-row chunk degenerates to the single-row kernel). Target more ops
/// per chunk than the generic row_grain and never split below 16 rows.
/// Like row_grain this is a pure function of the shape, and GEMM output
/// rows are computed independently, so chunking cannot change results.
inline std::int64_t gemm_row_grain(std::int64_t rows, std::int64_t work_per_row) {
  constexpr std::int64_t kTargetOps = 1 << 20;
  constexpr std::int64_t kMinRows = 16;
  if (rows <= kMinRows) return std::max<std::int64_t>(rows, 1);
  const std::int64_t grain =
      work_per_row > 0 ? (kTargetOps + work_per_row - 1) / work_per_row : rows;
  return std::clamp<std::int64_t>(std::max(grain, kMinRows), 1, rows);
}

/// Grain for elementwise sweeps.
constexpr std::int64_t kElemGrain = 1 << 15;

// Kernel scratch (im2col panels, per-sample dcols, softmax partials)
// comes from the per-thread bump arena as LIFO frames: a caller-side
// frame spans the whole kernel call, worker-side frames span one chunk.
// The arena keeps its high-water block across calls, so the steady state
// is heap-free — the property the zero-allocation tests assert.
using ScratchFrame = util::Arena::Frame;

util::Arena& scratch() { return util::thread_scratch_arena(); }

}  // namespace

// ---------------------------------------------------------------------------
// matmul family
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul: 2D operands required");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.ptr();
  const float* pb = b.ptr();
  float* pc = c.ptr();
  util::parallel_for(0, m, gemm_row_grain(m, static_cast<std::int64_t>(k) * n),
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::gemm_nn(pa + i0 * k, pb, pc + i0 * n, static_cast<int>(i1 - i0), k,
                                      n);
                     });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul_tn: 2D operands required");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.ptr();
  const float* pb = b.ptr();
  float* pc = c.ptr();
  util::parallel_for(0, m, gemm_row_grain(m, static_cast<std::int64_t>(k) * n),
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::gemm_tn(pa, pb, pc + i0 * n, static_cast<int>(i0),
                                      static_cast<int>(i1), m, k, n);
                     });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul_nt: 2D operands required");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.ptr();
  const float* pb = b.ptr();
  float* pc = c.ptr();
  util::parallel_for(0, m, gemm_row_grain(m, static_cast<std::int64_t>(k) * n),
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::gemm_nt_acc(pa + i0 * k, pb, pc + i0 * n, static_cast<int>(i1 - i0),
                                          k, n);
                     });
  return c;
}

// ---------------------------------------------------------------------------
// convolution
// ---------------------------------------------------------------------------

void im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec,
            float* cols, std::size_t row_stride) {
  const int channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const float* base = input.ptr() + static_cast<std::size_t>(sample) * channels * plane;
  for (int c = 0; c < channels; ++c) {
    const float* src_plane = base + static_cast<std::size_t>(c) * plane;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int row = (c * kh + ky) * kw + kx;
        float* dst = cols + static_cast<std::size_t>(row) * row_stride;
        // ix = ox*stride + x_off; clip to the [0, w) window once per row.
        const int x_off = kx * spec.dilation - spec.pad;
        const int ox0 = std::min(out_w, std::max(0, div_ceil(-x_off, spec.stride)));
        const int ox1 =
            std::max(ox0, std::min(out_w, div_floor(w - 1 - x_off, spec.stride) + 1));
        for (int oy = 0; oy < out_h; ++oy) {
          const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
          float* drow = dst + static_cast<std::size_t>(oy) * out_w;
          if (iy < 0 || iy >= h) {
            std::fill(drow, drow + out_w, 0.0f);
            continue;
          }
          const float* srow = src_plane + static_cast<std::size_t>(iy) * w;
          std::fill(drow, drow + ox0, 0.0f);
          if (spec.stride == 1) {
            std::copy(srow + ox0 + x_off, srow + ox1 + x_off, drow + ox0);
          } else {
            for (int ox = ox0; ox < ox1; ++ox) drow[ox] = srow[ox * spec.stride + x_off];
          }
          std::fill(drow + ox1, drow + out_w, 0.0f);
        }
      }
    }
  }
}

void im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec,
            float* cols) {
  const int out_h = spec.out_extent(input.dim(2), kh);
  const int out_w = spec.out_extent(input.dim(3), kw);
  im2col(input, sample, kh, kw, spec, cols, static_cast<std::size_t>(out_h) * out_w);
}

Tensor im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec) {
  require(input.ndim() == 4, "im2col: input must be (N,C,H,W)");
  const int channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "im2col: empty output");
  Tensor cols({channels * kh * kw, out_h * out_w});
  im2col(input, sample, kh, kw, spec, cols.ptr());
  return cols;
}

void col2im(const float* cols, Tensor& grad_input, int sample, int kh, int kw,
            const Conv2dSpec& spec) {
  const int channels = grad_input.dim(1), h = grad_input.dim(2), w = grad_input.dim(3);
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  const int patch = out_h * out_w;
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  float* base = grad_input.ptr() + static_cast<std::size_t>(sample) * channels * plane;
  for (int c = 0; c < channels; ++c) {
    float* dst_plane = base + static_cast<std::size_t>(c) * plane;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int row = (c * kh + ky) * kw + kx;
        const float* src = cols + static_cast<std::size_t>(row) * patch;
        const int x_off = kx * spec.dilation - spec.pad;
        const int ox0 = std::min(out_w, std::max(0, div_ceil(-x_off, spec.stride)));
        const int ox1 =
            std::max(ox0, std::min(out_w, div_floor(w - 1 - x_off, spec.stride) + 1));
        for (int oy = 0; oy < out_h; ++oy) {
          const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
          if (iy < 0 || iy >= h) continue;
          const float* srow = src + static_cast<std::size_t>(oy) * out_w;
          float* drow = dst_plane + static_cast<std::size_t>(iy) * w;
          for (int ox = ox0; ox < ox1; ++ox) drow[ox * spec.stride + x_off] += srow[ox];
        }
      }
    }
  }
}

void col2im(const Tensor& cols, Tensor& grad_input, int sample, int kh, int kw,
            const Conv2dSpec& spec) {
  const int channels = grad_input.dim(1), h = grad_input.dim(2), w = grad_input.dim(3);
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(cols.dim(0) == channels * kh * kw && cols.dim(1) == out_h * out_w,
          "col2im: shape mismatch");
  col2im(cols.ptr(), grad_input, sample, kh, kw, spec);
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const Conv2dSpec& spec) {
  require(input.ndim() == 4 && weight.ndim() == 4, "conv2d: 4D input/weight required");
  const int batch = input.dim(0), in_c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int out_c = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  require(weight.dim(1) == in_c, "conv2d: channel mismatch");
  if (bias != nullptr) require(static_cast<int>(bias->numel()) == out_c, "conv2d: bias size");
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "conv2d: empty output");

  const int kdim = in_c * kh * kw;
  const int patch = out_h * out_w;
  // Samples per GEMM. Small-spatial convolutions (ASPP at /8, the pooled
  // 1x1 branch) produce so few output columns that a per-sample GEMM runs
  // almost entirely in the micro-kernel's ragged column tail; coalescing
  // the columns of several samples into one GEMM fills the 16-wide vector
  // panels (measured ~14x per-column at 4 -> 32 columns). Past ~64 columns
  // the B strip outgrows L1 and per-column cost creeps back up, so wide
  // patches keep the classic one-sample-per-GEMM shape (group == 1, which
  // also writes the output in place with no scatter). gemm_nn treats every
  // column independently with an identical per-element k order, so the
  // grouping — like the batch composition itself — cannot change any bit
  // of any sample's output: the invariant the serving layer's dynamic
  // batcher is built on.
  constexpr int kTargetGemmCols = 64;
  const int group = std::clamp(kTargetGemmCols / patch, 1, batch);
  const int ngroups = (batch + group - 1) / group;
  const std::size_t group_stride = static_cast<std::size_t>(kdim) * patch * group;
  ScratchFrame frame(scratch());
  float* cols = scratch().alloc<float>(static_cast<std::size_t>(kdim) * patch * batch);

  // Phase 1: batched im2col, parallel over samples. The samples of one
  // group share a (kdim x group*patch) column matrix — member m owns
  // columns [m*patch, (m+1)*patch) of every row — and the groups' matrices
  // sit consecutively in the scratch arena.
  util::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      const std::int64_t g = n / group;
      const int members = std::min(group, batch - static_cast<int>(g) * group);
      im2col(input, static_cast<int>(n), kh, kw, spec,
             cols + group_stride * g + static_cast<std::size_t>(n % group) * patch,
             static_cast<std::size_t>(members) * patch);
    }
  });

  const Tensor w2d = weight.reshaped({out_c, kdim});
  Tensor output({batch, out_c, out_h, out_w});
  const float* pw = w2d.ptr();
  const float* pbias = bias != nullptr ? bias->ptr() : nullptr;
  float* pout = output.ptr();

  // Phase 2: one GEMM per (group, output-channel block), parallel over
  // both. For group == 1 the (out_c x patch) result IS the sample's output
  // layout and is written in place; otherwise GEMM lands in scratch and a
  // row scatter (~1/kdim of the GEMM work) restores NCHW.
  const std::size_t out_group_stride = static_cast<std::size_t>(out_c) * patch * group;
  float* gscratch =
      group > 1 ? scratch().alloc<float>(out_group_stride * static_cast<std::size_t>(ngroups))
                : nullptr;
  const std::int64_t ocb = gemm_row_grain(
      out_c, static_cast<std::int64_t>(kdim) * patch * group);
  const std::int64_t blocks = (out_c + ocb - 1) / ocb;
  util::parallel_for(0, ngroups * blocks, 1, [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t g = t / blocks;
      const int o0 = static_cast<int>((t % blocks) * ocb);
      const int o1 = std::min(out_c, o0 + static_cast<int>(ocb));
      const int first = static_cast<int>(g) * group;
      const int members = std::min(group, batch - first);
      const int gcols = members * patch;
      float* dst;
      if (group == 1) {
        dst = pout + (static_cast<std::size_t>(first) * out_c + o0) * patch;
      } else {
        // gemm_nn accumulates; the output tensor is born zeroed but the
        // scratch is reused and must be cleared. Each (group, block) task
        // owns a disjoint scratch slice, so clearing races nothing.
        dst = gscratch + out_group_stride * g + static_cast<std::size_t>(o0) * gcols;
        std::fill(dst, dst + static_cast<std::size_t>(o1 - o0) * gcols, 0.0f);
      }
      micro::gemm_nn(pw + static_cast<std::size_t>(o0) * kdim, cols + group_stride * g, dst,
                     o1 - o0, kdim, gcols);
      if (pbias != nullptr) {
        for (int o = o0; o < o1; ++o) {
          micro::add_scalar_inplace(dst + static_cast<std::size_t>(o - o0) * gcols, pbias[o],
                                    gcols);
        }
      }
      if (group > 1) {
        for (int m = 0; m < members; ++m) {
          for (int o = o0; o < o1; ++o) {
            const float* src = dst + static_cast<std::size_t>(o - o0) * gcols +
                               static_cast<std::size_t>(m) * patch;
            std::copy(src, src + patch,
                      pout + (static_cast<std::size_t>(first + m) * out_c + o) * patch);
          }
        }
      }
    }
  });
  return output;
}

Tensor conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                       const Conv2dSpec& spec, Tensor& grad_weight, Tensor* grad_bias) {
  const int batch = input.dim(0), in_c = input.dim(1);
  const int out_c = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  require(same_shape(grad_weight, weight), "conv2d_backward: grad_weight shape");
  const int patch = out_h * out_w;
  const int kdim = in_c * kh * kw;
  const std::size_t cols_stride = static_cast<std::size_t>(kdim) * patch;

  const Tensor w2d = weight.reshaped({out_c, kdim});
  Tensor grad_input({batch, in_c, input.dim(2), input.dim(3)});
  const float* pw = w2d.ptr();
  const float* pgo = grad_out.ptr();
  ScratchFrame frame(scratch());
  float* cols = scratch().alloc<float>(cols_stride * static_cast<std::size_t>(batch));

  // Phase 1: batched im2col, parallel over samples.
  util::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      im2col(input, static_cast<int>(n), kh, kw, spec, cols + cols_stride * n);
    }
  });

  // Phase 2: dW += sum_n go_n * cols_n^T, parallel over output-channel
  // rows; each row accumulates over samples in ascending order so the
  // result matches the serial per-sample add_ exactly.
  float* pgw = grad_weight.ptr();  // (out_c, kdim) view of the 4D tensor
  util::parallel_for(0, out_c, gemm_row_grain(out_c, static_cast<std::int64_t>(batch) * kdim * patch),
                     [&](std::int64_t o0, std::int64_t o1) {
                       for (int n = 0; n < batch; ++n) {
                         micro::gemm_nt_acc(
                             pgo + (static_cast<std::size_t>(n) * out_c + o0) * patch,
                             cols + cols_stride * n, pgw + static_cast<std::size_t>(o0) * kdim,
                             static_cast<int>(o1 - o0), patch, kdim);
                       }
                     });

  // Phase 3: dX = col2im(W^T * go_n), parallel over samples with a
  // per-worker dcols frame reused across the chunk's samples.
  util::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    ScratchFrame chunk_frame(scratch());
    float* dcols = scratch().alloc<float>(cols_stride);
    for (std::int64_t n = n0; n < n1; ++n) {
      std::fill(dcols, dcols + cols_stride, 0.0f);
      micro::gemm_tn(pw, pgo + static_cast<std::size_t>(n) * out_c * patch, dcols, 0, kdim, kdim,
                     out_c, patch);
      col2im(dcols, grad_input, static_cast<int>(n), kh, kw, spec);
    }
  });

  if (grad_bias != nullptr) {
    float* pgb = grad_bias->ptr();
    util::parallel_for(0, out_c, row_grain(out_c, static_cast<std::int64_t>(batch) * patch),
                       [&](std::int64_t o0, std::int64_t o1) {
                         for (std::int64_t o = o0; o < o1; ++o) {
                           for (int n = 0; n < batch; ++n) {
                             const float* src =
                                 pgo + (static_cast<std::size_t>(n) * out_c + o) * patch;
                             float acc = 0.0f;
                             for (int i = 0; i < patch; ++i) acc += src[i];
                             pgb[o] += acc;
                           }
                         }
                       });
  }
  return grad_input;
}

Tensor depthwise_conv2d(const Tensor& input, const Tensor& weight, const Conv2dSpec& spec) {
  require(input.ndim() == 4 && weight.ndim() == 4, "depthwise_conv2d: 4D input/weight required");
  const int batch = input.dim(0), channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int kh = weight.dim(2), kw = weight.dim(3);
  require(weight.dim(0) == channels && weight.dim(1) == 1,
          "depthwise_conv2d: weight must be (C,1,kh,kw)");
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "depthwise_conv2d: empty output");

  Tensor out({batch, channels, out_h, out_w});
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const float* pin = input.ptr();
  const float* pwt = weight.ptr();
  float* pout = out.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(
      0, planes, row_grain(planes, static_cast<std::int64_t>(out_plane) * kh * kw),
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const int c = static_cast<int>(p % channels);
          const float* src = pin + static_cast<std::size_t>(p) * in_plane;
          const float* wt = pwt + static_cast<std::size_t>(c) * kh * kw;
          float* dst = pout + static_cast<std::size_t>(p) * out_plane;
          for (int oy = 0; oy < out_h; ++oy)
            for (int ox = 0; ox < out_w; ++ox) {
              float acc = 0.0f;
              for (int ky = 0; ky < kh; ++ky) {
                const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < kw; ++kx) {
                  const int ix = ox * spec.stride - spec.pad + kx * spec.dilation;
                  if (ix < 0 || ix >= w) continue;
                  acc += src[static_cast<std::size_t>(iy) * w + ix] * wt[ky * kw + kx];
                }
              }
              dst[static_cast<std::size_t>(oy) * out_w + ox] = acc;
            }
        }
      });
  return out;
}

Tensor depthwise_conv2d_backward(const Tensor& input, const Tensor& weight,
                                 const Tensor& grad_out, const Conv2dSpec& spec,
                                 Tensor& grad_weight) {
  const int batch = input.dim(0), channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int kh = weight.dim(2), kw = weight.dim(3);
  const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  require(same_shape(grad_weight, weight), "depthwise_conv2d_backward: grad_weight shape");

  Tensor grad_input(input.shape());
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const float* pin = input.ptr();
  const float* pwt = weight.ptr();
  const float* pgo = grad_out.ptr();
  float* pgi = grad_input.ptr();
  float* pgw = grad_weight.ptr();
  // Parallel over channels: each chunk owns its channels' grad_weight
  // filters and grad_input planes; samples accumulate in ascending order.
  util::parallel_for(
      0, channels,
      row_grain(channels, static_cast<std::int64_t>(batch) * out_plane * kh * kw),
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          const float* wt = pwt + static_cast<std::size_t>(c) * kh * kw;
          float* gw = pgw + static_cast<std::size_t>(c) * kh * kw;
          for (int n = 0; n < batch; ++n) {
            const std::size_t plane_idx = static_cast<std::size_t>(n) * channels + c;
            const float* src = pin + plane_idx * in_plane;
            const float* go = pgo + plane_idx * out_plane;
            float* gi = pgi + plane_idx * in_plane;
            for (int oy = 0; oy < out_h; ++oy)
              for (int ox = 0; ox < out_w; ++ox) {
                const float g = go[static_cast<std::size_t>(oy) * out_w + ox];
                if (g == 0.0f) continue;
                for (int ky = 0; ky < kh; ++ky) {
                  const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
                  if (iy < 0 || iy >= h) continue;
                  for (int kx = 0; kx < kw; ++kx) {
                    const int ix = ox * spec.stride - spec.pad + kx * spec.dilation;
                    if (ix < 0 || ix >= w) continue;
                    gi[static_cast<std::size_t>(iy) * w + ix] += g * wt[ky * kw + kx];
                    gw[ky * kw + kx] += g * src[static_cast<std::size_t>(iy) * w + ix];
                  }
                }
              }
          }
        }
      });
  return grad_input;
}

// ---------------------------------------------------------------------------
// activations / normalisation
// ---------------------------------------------------------------------------

Tensor relu(const Tensor& x) {
  Tensor out = x;
  float* p = out.ptr();
  util::parallel_for(0, static_cast<std::int64_t>(out.numel()), kElemGrain,
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::relu_inplace(p + i0, i1 - i0);
                     });
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_out) {
  require(same_shape(x, grad_out), "relu_backward: shape mismatch");
  Tensor grad = grad_out;
  const float* px = x.ptr();
  float* pg = grad.ptr();
  util::parallel_for(0, static_cast<std::int64_t>(grad.numel()), kElemGrain,
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::relu_zero_where_nonpositive(px + i0, pg + i0, i1 - i0);
                     });
  return grad;
}

Tensor batchnorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta, Tensor& running_mean,
                   Tensor& running_var, bool train, float momentum, float eps,
                   BatchNormCache* cache) {
  require(x.ndim() == 4, "batchnorm2d: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  require(static_cast<int>(gamma.numel()) == channels, "batchnorm2d: gamma size");
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  const std::size_t per_channel = static_cast<std::size_t>(batch) * hw;

  Tensor out(x.shape());
  // Train writes the statistics straight into the cache's resize-once
  // vectors (stable capacity across steps); eval borrows frame scratch.
  ScratchFrame frame(scratch());
  float* mean = nullptr;
  float* inv_std = nullptr;
  if (cache != nullptr) {
    cache->mean.resize(static_cast<std::size_t>(channels));
    cache->inv_std.resize(static_cast<std::size_t>(channels));
    mean = cache->mean.data();
    inv_std = cache->inv_std.data();
  } else {
    mean = scratch().alloc<float>(static_cast<std::size_t>(channels));
    inv_std = scratch().alloc<float>(static_cast<std::size_t>(channels));
  }
  const float* px = x.ptr();

  // Per-channel statistics: each channel is reduced serially inside one
  // chunk (sample-major order, matching the serial kernel bit for bit).
  util::parallel_for(
      0, channels, row_grain(channels, static_cast<std::int64_t>(per_channel) * 2),
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          double m = 0.0, v = 0.0;
          if (train) {
            for (int n = 0; n < batch; ++n) {
              const float* p = px + (static_cast<std::size_t>(n) * channels + c) * hw;
              for (std::size_t i = 0; i < hw; ++i) m += p[i];
            }
            m /= static_cast<double>(per_channel);
            for (int n = 0; n < batch; ++n) {
              const float* p = px + (static_cast<std::size_t>(n) * channels + c) * hw;
              for (std::size_t i = 0; i < hw; ++i) {
                const double d = p[i] - m;
                v += d * d;
              }
            }
            v /= static_cast<double>(per_channel);
            running_mean[static_cast<std::size_t>(c)] =
                (1.0f - momentum) * running_mean[static_cast<std::size_t>(c)] +
                momentum * static_cast<float>(m);
            running_var[static_cast<std::size_t>(c)] =
                (1.0f - momentum) * running_var[static_cast<std::size_t>(c)] +
                momentum * static_cast<float>(v);
          } else {
            m = running_mean[static_cast<std::size_t>(c)];
            v = running_var[static_cast<std::size_t>(c)];
          }
          mean[static_cast<std::size_t>(c)] = static_cast<float>(m);
          inv_std[static_cast<std::size_t>(c)] = static_cast<float>(1.0 / std::sqrt(v + eps));
        }
      });

  // x_hat is only materialised when a cache wants it for backward (eval
  // forwards skip the store entirely; the arithmetic for `out` is the
  // same either way, so outputs stay bitwise identical).
  float* pxh = nullptr;
  if (cache != nullptr) {
    cache->x_hat = Tensor(x.shape());
    pxh = cache->x_hat.ptr();
  }
  float* pout = out.ptr();
  const float* pg = gamma.ptr();
  const float* pb = beta.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(0, planes, row_grain(planes, static_cast<std::int64_t>(hw)),
                     [&](std::int64_t p0, std::int64_t p1) {
                       for (std::int64_t p = p0; p < p1; ++p) {
                         const auto c = static_cast<std::size_t>(p % channels);
                         const float m = mean[c];
                         const float is = inv_std[c];
                         const float g = pg[c];
                         const float b = pb[c];
                         const float* src = px + static_cast<std::size_t>(p) * hw;
                         float* dst = pout + static_cast<std::size_t>(p) * hw;
                         if (pxh != nullptr) {
                           float* xh = pxh + static_cast<std::size_t>(p) * hw;
                           for (std::size_t i = 0; i < hw; ++i) {
                             const float v = (src[i] - m) * is;
                             xh[i] = v;
                             dst[i] = g * v + b;
                           }
                         } else {
                           for (std::size_t i = 0; i < hw; ++i) {
                             const float v = (src[i] - m) * is;
                             dst[i] = g * v + b;
                           }
                         }
                       }
                     });
  return out;
}

Tensor batchnorm2d_backward(const Tensor& grad_out, const BatchNormCache& cache,
                            const Tensor& gamma, Tensor& grad_gamma, Tensor& grad_beta) {
  const Tensor& x_hat = cache.x_hat;
  require(same_shape(grad_out, x_hat), "batchnorm2d_backward: shape mismatch");
  const int batch = grad_out.dim(0), channels = grad_out.dim(1), h = grad_out.dim(2),
            w = grad_out.dim(3);
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  const auto per_channel = static_cast<float>(static_cast<std::size_t>(batch) * hw);

  Tensor grad_in(grad_out.shape());
  const float* pgo = grad_out.ptr();
  const float* pxh = x_hat.ptr();
  float* pgi = grad_in.ptr();
  util::parallel_for(
      0, channels, row_grain(channels, static_cast<std::int64_t>(batch) * hw * 2),
      [&](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (int n = 0; n < batch; ++n) {
            const std::size_t off = (static_cast<std::size_t>(n) * channels + c) * hw;
            const float* dy = pgo + off;
            const float* xh = pxh + off;
            for (std::size_t i = 0; i < hw; ++i) {
              sum_dy += dy[i];
              sum_dy_xhat += dy[i] * xh[i];
            }
          }
          grad_beta[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
          grad_gamma[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);

          const float g = gamma[static_cast<std::size_t>(c)];
          const float is = cache.inv_std[static_cast<std::size_t>(c)];
          const float mean_dy = static_cast<float>(sum_dy) / per_channel;
          const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) / per_channel;
          for (int n = 0; n < batch; ++n) {
            const std::size_t off = (static_cast<std::size_t>(n) * channels + c) * hw;
            const float* dy = pgo + off;
            const float* xh = pxh + off;
            float* gi = pgi + off;
            for (std::size_t i = 0; i < hw; ++i) {
              gi[i] = g * is * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
            }
          }
        }
      });
  return grad_in;
}

// ---------------------------------------------------------------------------
// pooling / resize
// ---------------------------------------------------------------------------

namespace {

// Shared maxpool kernel; `pargmax` may be null (inference — no backward
// state recorded). Both entry points produce bitwise-identical outputs:
// the scan order over each window is the same either way.
Tensor maxpool2d_impl(const Tensor& x, int kernel, int stride, int* pargmax) {
  require(x.ndim() == 4, "maxpool2d: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int out_h = (h - kernel) / stride + 1;
  const int out_w = (w - kernel) / stride + 1;
  require(out_h > 0 && out_w > 0, "maxpool2d: empty output");
  Tensor out({batch, channels, out_h, out_w});
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const float* px = x.ptr();
  float* pout = out.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(
      0, planes, row_grain(planes, static_cast<std::int64_t>(out_plane) * kernel * kernel),
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const float* src = px + static_cast<std::size_t>(p) * in_plane;
          float* dst = pout + static_cast<std::size_t>(p) * out_plane;
          int* am = pargmax ? pargmax + static_cast<std::size_t>(p) * out_plane : nullptr;
          std::size_t idx = 0;
          for (int oy = 0; oy < out_h; ++oy)
            for (int ox = 0; ox < out_w; ++ox, ++idx) {
              float best = -std::numeric_limits<float>::infinity();
              int best_pos = 0;
              for (int ky = 0; ky < kernel; ++ky) {
                const int iy = oy * stride + ky;
                const float* srow = src + static_cast<std::size_t>(iy) * w;
                for (int kx = 0; kx < kernel; ++kx) {
                  const int ix = ox * stride + kx;
                  const float v = srow[ix];
                  if (v > best) {
                    best = v;
                    best_pos = iy * w + ix;
                  }
                }
              }
              dst[idx] = best;
              if (am) am[idx] = best_pos;
            }
        }
      });
  return out;
}

}  // namespace

Tensor maxpool2d(const Tensor& x, int kernel, int stride, std::vector<int>& argmax) {
  require(x.ndim() == 4, "maxpool2d: input must be (N,C,H,W)");
  const int out_h = (x.dim(2) - kernel) / stride + 1;
  const int out_w = (x.dim(3) - kernel) / stride + 1;
  require(out_h > 0 && out_w > 0, "maxpool2d: empty output");
  argmax.assign(static_cast<std::size_t>(x.dim(0)) * x.dim(1) * out_h * out_w, 0);
  return maxpool2d_impl(x, kernel, stride, argmax.data());
}

Tensor maxpool2d(const Tensor& x, int kernel, int stride) {
  return maxpool2d_impl(x, kernel, stride, nullptr);
}

Tensor maxpool2d_backward(const Tensor& x, const Tensor& grad_out, int kernel, int stride,
                          const std::vector<int>& argmax) {
  (void)kernel;
  (void)stride;
  require(grad_out.numel() == argmax.size(), "maxpool2d_backward: argmax size");
  const int channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor grad_in(x.shape());
  const int batch = grad_out.dim(0);
  const std::size_t out_plane = static_cast<std::size_t>(grad_out.dim(2)) * grad_out.dim(3);
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const float* pgo = grad_out.ptr();
  const int* pargmax = argmax.data();
  float* pgi = grad_in.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(0, planes, row_grain(planes, static_cast<std::int64_t>(out_plane)),
                     [&](std::int64_t p0, std::int64_t p1) {
                       for (std::int64_t p = p0; p < p1; ++p) {
                         const float* go = pgo + static_cast<std::size_t>(p) * out_plane;
                         const int* am = pargmax + static_cast<std::size_t>(p) * out_plane;
                         float* gi = pgi + static_cast<std::size_t>(p) * in_plane;
                         for (std::size_t i = 0; i < out_plane; ++i) gi[am[i]] += go[i];
                       }
                     });
  return grad_in;
}

Tensor global_avg_pool(const Tensor& x) {
  require(x.ndim() == 4, "global_avg_pool: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out({batch, channels, 1, 1});
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* px = x.ptr();
  float* pout = out.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(0, planes, row_grain(planes, static_cast<std::int64_t>(hw)),
                     [&](std::int64_t p0, std::int64_t p1) {
                       for (std::int64_t p = p0; p < p1; ++p) {
                         const float* src = px + static_cast<std::size_t>(p) * hw;
                         double acc = 0.0;
                         for (std::size_t i = 0; i < hw; ++i) acc += src[i];
                         pout[p] = static_cast<float>(acc) * inv;
                       }
                     });
  return out;
}

Tensor global_avg_pool_backward(const Tensor& x, const Tensor& grad_out) {
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor grad_in(x.shape());
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* pgo = grad_out.ptr();
  float* pgi = grad_in.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(0, planes, row_grain(planes, static_cast<std::int64_t>(hw)),
                     [&](std::int64_t p0, std::int64_t p1) {
                       for (std::int64_t p = p0; p < p1; ++p) {
                         const float g = pgo[p] * inv;
                         float* dst = pgi + static_cast<std::size_t>(p) * hw;
                         for (std::size_t i = 0; i < hw; ++i) dst[i] = g;
                       }
                     });
  return grad_in;
}

namespace {

/// Sample position mapping for align_corners=true bilinear resize.
inline float src_pos(int out_idx, int in_extent, int out_extent) {
  if (out_extent == 1) return 0.0f;
  return static_cast<float>(out_idx) * static_cast<float>(in_extent - 1) /
         static_cast<float>(out_extent - 1);
}

/// Per-axis sample tables, carved out of the caller's scratch frame so
/// resize calls in the steady state stay heap-free. Written before the
/// parallel fan-out, read-only inside it.
struct ResizeAxis {
  int* lo;
  int* hi;
  float* frac;
  ResizeAxis(util::Arena& arena, int in_extent, int out_extent)
      : lo(arena.alloc<int>(static_cast<std::size_t>(out_extent))),
        hi(arena.alloc<int>(static_cast<std::size_t>(out_extent))),
        frac(arena.alloc<float>(static_cast<std::size_t>(out_extent))) {
    for (int o = 0; o < out_extent; ++o) {
      const float f = src_pos(o, in_extent, out_extent);
      const int i0 = static_cast<int>(f);
      lo[static_cast<std::size_t>(o)] = i0;
      hi[static_cast<std::size_t>(o)] = std::min(i0 + 1, in_extent - 1);
      frac[static_cast<std::size_t>(o)] = f - static_cast<float>(i0);
    }
  }
};

}  // namespace

Tensor bilinear_resize(const Tensor& x, int out_h, int out_w) {
  require(x.ndim() == 4, "bilinear_resize: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out({batch, channels, out_h, out_w});
  ScratchFrame frame(scratch());
  const ResizeAxis ay(scratch(), h, out_h), ax(scratch(), w, out_w);
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const float* px = x.ptr();
  float* pout = out.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(
      0, planes, row_grain(planes, static_cast<std::int64_t>(out_plane) * 4),
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const float* src = px + static_cast<std::size_t>(p) * in_plane;
          float* dst = pout + static_cast<std::size_t>(p) * out_plane;
          for (int oy = 0; oy < out_h; ++oy) {
            const float* r0 = src + static_cast<std::size_t>(ay.lo[static_cast<std::size_t>(oy)]) * w;
            const float* r1 = src + static_cast<std::size_t>(ay.hi[static_cast<std::size_t>(oy)]) * w;
            const float wy = ay.frac[static_cast<std::size_t>(oy)];
            float* drow = dst + static_cast<std::size_t>(oy) * out_w;
            for (int ox = 0; ox < out_w; ++ox) {
              const int x0 = ax.lo[static_cast<std::size_t>(ox)];
              const int x1 = ax.hi[static_cast<std::size_t>(ox)];
              const float wx = ax.frac[static_cast<std::size_t>(ox)];
              drow[ox] = (1 - wy) * ((1 - wx) * r0[x0] + wx * r0[x1]) +
                         wy * ((1 - wx) * r1[x0] + wx * r1[x1]);
            }
          }
        }
      });
  return out;
}

Tensor bilinear_resize_backward(const Tensor& x, const Tensor& grad_out) {
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  Tensor grad_in(x.shape());
  ScratchFrame frame(scratch());
  const ResizeAxis ay(scratch(), h, out_h), ax(scratch(), w, out_w);
  const std::size_t in_plane = static_cast<std::size_t>(h) * w;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const float* pgo = grad_out.ptr();
  float* pgi = grad_in.ptr();
  const std::int64_t planes = static_cast<std::int64_t>(batch) * channels;
  util::parallel_for(
      0, planes, row_grain(planes, static_cast<std::int64_t>(out_plane) * 4),
      [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
          const float* go = pgo + static_cast<std::size_t>(p) * out_plane;
          float* gi = pgi + static_cast<std::size_t>(p) * in_plane;
          for (int oy = 0; oy < out_h; ++oy) {
            float* r0 = gi + static_cast<std::size_t>(ay.lo[static_cast<std::size_t>(oy)]) * w;
            float* r1 = gi + static_cast<std::size_t>(ay.hi[static_cast<std::size_t>(oy)]) * w;
            const float wy = ay.frac[static_cast<std::size_t>(oy)];
            const float* grow = go + static_cast<std::size_t>(oy) * out_w;
            for (int ox = 0; ox < out_w; ++ox) {
              const int x0 = ax.lo[static_cast<std::size_t>(ox)];
              const int x1 = ax.hi[static_cast<std::size_t>(ox)];
              const float wx = ax.frac[static_cast<std::size_t>(ox)];
              const float g = grow[ox];
              r0[x0] += (1 - wy) * (1 - wx) * g;
              r0[x1] += (1 - wy) * wx * g;
              r1[x0] += wy * (1 - wx) * g;
              r1[x1] += wy * wx * g;
            }
          }
        }
      });
  return grad_in;
}

// ---------------------------------------------------------------------------
// structure
// ---------------------------------------------------------------------------

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 4 && b.ndim() == 4, "concat_channels: 4D inputs required");
  require(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2) && a.dim(3) == b.dim(3),
          "concat_channels: N/H/W must match");
  const int batch = a.dim(0), ca = a.dim(1), cb = b.dim(1), h = a.dim(2), w = a.dim(3);
  Tensor out({batch, ca + cb, h, w});
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::copy(a.ptr() + static_cast<std::size_t>(n) * ca * plane,
              a.ptr() + static_cast<std::size_t>(n + 1) * ca * plane,
              out.ptr() + static_cast<std::size_t>(n) * (ca + cb) * plane);
    std::copy(b.ptr() + static_cast<std::size_t>(n) * cb * plane,
              b.ptr() + static_cast<std::size_t>(n + 1) * cb * plane,
              out.ptr() + static_cast<std::size_t>(n) * (ca + cb) * plane + ca * plane);
  }
  return out;
}

void split_channels(const Tensor& grad_out, int channels_a, Tensor& grad_a, Tensor& grad_b) {
  const int batch = grad_out.dim(0), total = grad_out.dim(1), h = grad_out.dim(2),
            w = grad_out.dim(3);
  const int channels_b = total - channels_a;
  grad_a = Tensor({batch, channels_a, h, w});
  grad_b = Tensor({batch, channels_b, h, w});
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::copy(grad_out.ptr() + static_cast<std::size_t>(n) * total * plane,
              grad_out.ptr() + static_cast<std::size_t>(n) * total * plane + channels_a * plane,
              grad_a.ptr() + static_cast<std::size_t>(n) * channels_a * plane);
    std::copy(grad_out.ptr() + static_cast<std::size_t>(n) * total * plane + channels_a * plane,
              grad_out.ptr() + static_cast<std::size_t>(n + 1) * total * plane,
              grad_b.ptr() + static_cast<std::size_t>(n) * channels_b * plane);
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  require(same_shape(a, b), "add: shape mismatch");
  Tensor out = a;
  const float* pb = b.ptr();
  float* po = out.ptr();
  util::parallel_for(0, static_cast<std::int64_t>(out.numel()), kElemGrain,
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::add_inplace(po + i0, pb + i0, i1 - i0);
                     });
  return out;
}

// ---------------------------------------------------------------------------
// loss
// ---------------------------------------------------------------------------

float softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                            int ignore_label, Tensor& grad) {
  require(logits.ndim() == 4, "softmax_cross_entropy: logits must be (N,K,H,W)");
  const int batch = logits.dim(0), classes = logits.dim(1), h = logits.dim(2), w = logits.dim(3);
  require(labels.size() == static_cast<std::size_t>(batch) * h * w,
          "softmax_cross_entropy: label count mismatch");
  grad = Tensor(logits.shape());

  const std::size_t hw = static_cast<std::size_t>(h) * w;
  const float* pl = logits.ptr();
  float* pg = grad.ptr();
  // Per-sample partials combined in sample order below: deterministic for
  // any thread count because the chunking is per sample.
  ScratchFrame frame(scratch());
  double* sample_loss = scratch().alloc<double>(static_cast<std::size_t>(batch));
  std::size_t* sample_counted = scratch().alloc<std::size_t>(static_cast<std::size_t>(batch));
  util::parallel_for(
      0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
        // Per-worker probs frame (same mechanism as the conv dcols
        // buffer): no heap allocation inside the loss loop.
        ScratchFrame chunk_frame(scratch());
        float* probs = scratch().alloc<float>(static_cast<std::size_t>(classes));
        for (std::int64_t n = n0; n < n1; ++n) {
          const float* ln = pl + static_cast<std::size_t>(n) * classes * hw;
          float* gn = pg + static_cast<std::size_t>(n) * classes * hw;
          double loss = 0.0;
          std::size_t counted = 0;
          for (std::size_t i = 0; i < hw; ++i) {
            const int label = labels[static_cast<std::size_t>(n) * hw + i];
            if (label == ignore_label) continue;
            require(label >= 0 && label < classes, "softmax_cross_entropy: label out of range");
            float max_logit = -std::numeric_limits<float>::infinity();
            for (int k = 0; k < classes; ++k) {
              max_logit = std::max(max_logit, ln[static_cast<std::size_t>(k) * hw + i]);
            }
            double denom = 0.0;
            for (int k = 0; k < classes; ++k) {
              probs[static_cast<std::size_t>(k)] =
                  std::exp(ln[static_cast<std::size_t>(k) * hw + i] - max_logit);
              denom += probs[static_cast<std::size_t>(k)];
            }
            const double inv = 1.0 / denom;
            loss -= std::log(probs[static_cast<std::size_t>(label)] * inv);
            for (int k = 0; k < classes; ++k) {
              gn[static_cast<std::size_t>(k) * hw + i] =
                  static_cast<float>(probs[static_cast<std::size_t>(k)] * inv) -
                  (k == label ? 1.0f : 0.0f);
            }
            ++counted;
          }
          sample_loss[static_cast<std::size_t>(n)] = loss;
          sample_counted[static_cast<std::size_t>(n)] = counted;
        }
      });

  double loss = 0.0;
  std::size_t counted = 0;
  for (int n = 0; n < batch; ++n) {
    loss += sample_loss[static_cast<std::size_t>(n)];
    counted += sample_counted[static_cast<std::size_t>(n)];
  }
  if (counted == 0) return 0.0f;
  const float scale = 1.0f / static_cast<float>(counted);
  util::parallel_for(0, static_cast<std::int64_t>(grad.numel()), kElemGrain,
                     [&](std::int64_t i0, std::int64_t i1) {
                       micro::scale_inplace(pg + i0, scale, i1 - i0);
                     });
  return static_cast<float>(loss) * scale;
}

void argmax_channels(const Tensor& logits, std::vector<int>& out) {
  const int batch = logits.dim(0), classes = logits.dim(1), h = logits.dim(2), w = logits.dim(3);
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  // Resizes (not reallocates) when the caller reuses the buffer across
  // eval batches — the trainer's confusion-matrix loop passes the same
  // vector every batch.
  out.resize(static_cast<std::size_t>(batch) * hw);
  const float* pl = logits.ptr();
  int* po = out.data();
  util::parallel_for(0, batch, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t n = n0; n < n1; ++n) {
      const float* ln = pl + static_cast<std::size_t>(n) * classes * hw;
      int* dst = po + static_cast<std::size_t>(n) * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        int best = 0;
        float best_value = ln[i];
        for (int k = 1; k < classes; ++k) {
          const float v = ln[static_cast<std::size_t>(k) * hw + i];
          if (v > best_value) {
            best_value = v;
            best = k;
          }
        }
        dst[i] = best;
      }
    }
  });
}

std::vector<int> argmax_channels(const Tensor& logits) {
  std::vector<int> out;
  argmax_channels(logits, out);
  return out;
}

}  // namespace dlscale::tensor
