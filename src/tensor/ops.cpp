#include "dlscale/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dlscale::tensor {

namespace {

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace

// ---------------------------------------------------------------------------
// matmul family
// ---------------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul: 2D operands required");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.ptr();
  const float* pb = b.ptr();
  float* pc = c.ptr();
  // ikj loop order: unit-stride inner loop over both B and C rows.
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = pa[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul_tn: 2D operands required");
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.ptr();
  const float* pb = b.ptr();
  float* pc = c.ptr();
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = pa + static_cast<std::size_t>(kk) * m;
    const float* brow = pb + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 2 && b.ndim() == 2, "matmul_nt: 2D operands required");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimensions differ");
  Tensor c({m, n});
  const float* pa = a.ptr();
  const float* pb = b.ptr();
  float* pc = c.ptr();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[static_cast<std::size_t>(i) * n + j] = acc;
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// convolution
// ---------------------------------------------------------------------------

Tensor im2col(const Tensor& input, int sample, int kh, int kw, const Conv2dSpec& spec) {
  require(input.ndim() == 4, "im2col: input must be (N,C,H,W)");
  const int channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "im2col: empty output");
  Tensor cols({channels * kh * kw, out_h * out_w});
  float* pc = cols.ptr();
  const int patch = out_h * out_w;
  for (int c = 0; c < channels; ++c) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int row = (c * kh + ky) * kw + kx;
        float* dst = pc + static_cast<std::size_t>(row) * patch;
        for (int oy = 0; oy < out_h; ++oy) {
          const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
          for (int ox = 0; ox < out_w; ++ox) {
            const int ix = ox * spec.stride - spec.pad + kx * spec.dilation;
            dst[oy * out_w + ox] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                       ? input.at(sample, c, iy, ix)
                                       : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

void col2im(const Tensor& cols, Tensor& grad_input, int sample, int kh, int kw,
            const Conv2dSpec& spec) {
  const int channels = grad_input.dim(1), h = grad_input.dim(2), w = grad_input.dim(3);
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(cols.dim(0) == channels * kh * kw && cols.dim(1) == out_h * out_w,
          "col2im: shape mismatch");
  const float* pc = cols.ptr();
  const int patch = out_h * out_w;
  for (int c = 0; c < channels; ++c) {
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx) {
        const int row = (c * kh + ky) * kw + kx;
        const float* src = pc + static_cast<std::size_t>(row) * patch;
        for (int oy = 0; oy < out_h; ++oy) {
          const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
          if (iy < 0 || iy >= h) continue;
          for (int ox = 0; ox < out_w; ++ox) {
            const int ix = ox * spec.stride - spec.pad + kx * spec.dilation;
            if (ix < 0 || ix >= w) continue;
            grad_input.at(sample, c, iy, ix) += src[oy * out_w + ox];
          }
        }
      }
    }
  }
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor* bias,
              const Conv2dSpec& spec) {
  require(input.ndim() == 4 && weight.ndim() == 4, "conv2d: 4D input/weight required");
  const int batch = input.dim(0), in_c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int out_c = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  require(weight.dim(1) == in_c, "conv2d: channel mismatch");
  if (bias != nullptr) require(static_cast<int>(bias->numel()) == out_c, "conv2d: bias size");
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "conv2d: empty output");

  const Tensor w2d = weight.reshaped({out_c, in_c * kh * kw});
  Tensor output({batch, out_c, out_h, out_w});
  const int patch = out_h * out_w;
  for (int n = 0; n < batch; ++n) {
    const Tensor cols = im2col(input, n, kh, kw, spec);
    const Tensor prod = matmul(w2d, cols);  // (out_c, patch)
    float* dst = output.ptr() + static_cast<std::size_t>(n) * out_c * patch;
    std::copy(prod.ptr(), prod.ptr() + prod.numel(), dst);
  }
  if (bias != nullptr) {
    for (int n = 0; n < batch; ++n) {
      for (int o = 0; o < out_c; ++o) {
        const float b = (*bias)[static_cast<std::size_t>(o)];
        float* dst =
            output.ptr() + (static_cast<std::size_t>(n) * out_c + o) * patch;
        for (int i = 0; i < patch; ++i) dst[i] += b;
      }
    }
  }
  return output;
}

Tensor conv2d_backward(const Tensor& input, const Tensor& weight, const Tensor& grad_out,
                       const Conv2dSpec& spec, Tensor& grad_weight, Tensor* grad_bias) {
  const int batch = input.dim(0), in_c = input.dim(1);
  const int out_c = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  require(same_shape(grad_weight, weight), "conv2d_backward: grad_weight shape");
  const int patch = out_h * out_w;

  const Tensor w2d = weight.reshaped({out_c, in_c * kh * kw});
  Tensor grad_w2d = grad_weight.reshaped({out_c, in_c * kh * kw});
  Tensor grad_input({batch, in_c, input.dim(2), input.dim(3)});

  for (int n = 0; n < batch; ++n) {
    // View this sample's grad_out as (out_c, patch).
    Tensor go({out_c, patch});
    std::copy(grad_out.ptr() + static_cast<std::size_t>(n) * out_c * patch,
              grad_out.ptr() + static_cast<std::size_t>(n + 1) * out_c * patch, go.ptr());
    const Tensor cols = im2col(input, n, kh, kw, spec);
    // dW += go * cols^T
    const Tensor dw = matmul_nt(go, cols);
    grad_w2d.add_(dw);
    // dX_cols = W^T * go, folded back with col2im.
    const Tensor dcols = matmul_tn(w2d, go);
    col2im(dcols, grad_input, n, kh, kw, spec);
  }
  // Write the accumulated 2D gradient back into the 4D tensor.
  std::copy(grad_w2d.ptr(), grad_w2d.ptr() + grad_w2d.numel(), grad_weight.ptr());

  if (grad_bias != nullptr) {
    for (int n = 0; n < batch; ++n) {
      for (int o = 0; o < out_c; ++o) {
        const float* src =
            grad_out.ptr() + (static_cast<std::size_t>(n) * out_c + o) * patch;
        float acc = 0.0f;
        for (int i = 0; i < patch; ++i) acc += src[i];
        (*grad_bias)[static_cast<std::size_t>(o)] += acc;
      }
    }
  }
  return grad_input;
}


Tensor depthwise_conv2d(const Tensor& input, const Tensor& weight, const Conv2dSpec& spec) {
  require(input.ndim() == 4 && weight.ndim() == 4, "depthwise_conv2d: 4D input/weight required");
  const int batch = input.dim(0), channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int kh = weight.dim(2), kw = weight.dim(3);
  require(weight.dim(0) == channels && weight.dim(1) == 1,
          "depthwise_conv2d: weight must be (C,1,kh,kw)");
  const int out_h = spec.out_extent(h, kh);
  const int out_w = spec.out_extent(w, kw);
  require(out_h > 0 && out_w > 0, "depthwise_conv2d: empty output");

  Tensor out({batch, channels, out_h, out_w});
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c)
      for (int oy = 0; oy < out_h; ++oy)
        for (int ox = 0; ox < out_w; ++ox) {
          float acc = 0.0f;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < kw; ++kx) {
              const int ix = ox * spec.stride - spec.pad + kx * spec.dilation;
              if (ix < 0 || ix >= w) continue;
              acc += input.at(n, c, iy, ix) * weight.at(c, 0, ky, kx);
            }
          }
          out.at(n, c, oy, ox) = acc;
        }
  return out;
}

Tensor depthwise_conv2d_backward(const Tensor& input, const Tensor& weight,
                                 const Tensor& grad_out, const Conv2dSpec& spec,
                                 Tensor& grad_weight) {
  const int batch = input.dim(0), channels = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int kh = weight.dim(2), kw = weight.dim(3);
  const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  require(same_shape(grad_weight, weight), "depthwise_conv2d_backward: grad_weight shape");

  Tensor grad_input(input.shape());
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c)
      for (int oy = 0; oy < out_h; ++oy)
        for (int ox = 0; ox < out_w; ++ox) {
          const float g = grad_out.at(n, c, oy, ox);
          if (g == 0.0f) continue;
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * spec.stride - spec.pad + ky * spec.dilation;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < kw; ++kx) {
              const int ix = ox * spec.stride - spec.pad + kx * spec.dilation;
              if (ix < 0 || ix >= w) continue;
              grad_input.at(n, c, iy, ix) += g * weight.at(c, 0, ky, kx);
              grad_weight.at(c, 0, ky, kx) += g * input.at(n, c, iy, ix);
            }
          }
        }
  return grad_input;
}

// ---------------------------------------------------------------------------
// activations / normalisation
// ---------------------------------------------------------------------------

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::max(0.0f, out[i]);
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_out) {
  require(same_shape(x, grad_out), "relu_backward: shape mismatch");
  Tensor grad = grad_out;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    if (x[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor batchnorm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta, Tensor& running_mean,
                   Tensor& running_var, bool train, float momentum, float eps,
                   BatchNormCache* cache) {
  require(x.ndim() == 4, "batchnorm2d: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  require(static_cast<int>(gamma.numel()) == channels, "batchnorm2d: gamma size");
  const std::size_t per_channel = static_cast<std::size_t>(batch) * h * w;

  Tensor out(x.shape());
  std::vector<float> mean(static_cast<std::size_t>(channels));
  std::vector<float> inv_std(static_cast<std::size_t>(channels));

  for (int c = 0; c < channels; ++c) {
    double m = 0.0, v = 0.0;
    if (train) {
      for (int n = 0; n < batch; ++n)
        for (int y = 0; y < h; ++y)
          for (int xx = 0; xx < w; ++xx) m += x.at(n, c, y, xx);
      m /= static_cast<double>(per_channel);
      for (int n = 0; n < batch; ++n)
        for (int y = 0; y < h; ++y)
          for (int xx = 0; xx < w; ++xx) {
            const double d = x.at(n, c, y, xx) - m;
            v += d * d;
          }
      v /= static_cast<double>(per_channel);
      running_mean[static_cast<std::size_t>(c)] =
          (1.0f - momentum) * running_mean[static_cast<std::size_t>(c)] +
          momentum * static_cast<float>(m);
      running_var[static_cast<std::size_t>(c)] =
          (1.0f - momentum) * running_var[static_cast<std::size_t>(c)] +
          momentum * static_cast<float>(v);
    } else {
      m = running_mean[static_cast<std::size_t>(c)];
      v = running_var[static_cast<std::size_t>(c)];
    }
    mean[static_cast<std::size_t>(c)] = static_cast<float>(m);
    inv_std[static_cast<std::size_t>(c)] = static_cast<float>(1.0 / std::sqrt(v + eps));
  }

  Tensor x_hat(x.shape());
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float m = mean[static_cast<std::size_t>(c)];
      const float is = inv_std[static_cast<std::size_t>(c)];
      const float g = gamma[static_cast<std::size_t>(c)];
      const float b = beta[static_cast<std::size_t>(c)];
      for (int y = 0; y < h; ++y) {
        for (int xx = 0; xx < w; ++xx) {
          const float xh = (x.at(n, c, y, xx) - m) * is;
          x_hat.at(n, c, y, xx) = xh;
          out.at(n, c, y, xx) = g * xh + b;
        }
      }
    }
  }
  if (cache != nullptr) {
    cache->x_hat = std::move(x_hat);
    cache->mean = std::move(mean);
    cache->inv_std = std::move(inv_std);
  }
  return out;
}

Tensor batchnorm2d_backward(const Tensor& grad_out, const BatchNormCache& cache,
                            const Tensor& gamma, Tensor& grad_gamma, Tensor& grad_beta) {
  const Tensor& x_hat = cache.x_hat;
  require(same_shape(grad_out, x_hat), "batchnorm2d_backward: shape mismatch");
  const int batch = grad_out.dim(0), channels = grad_out.dim(1), h = grad_out.dim(2),
            w = grad_out.dim(3);
  const auto per_channel = static_cast<float>(static_cast<std::size_t>(batch) * h * w);

  Tensor grad_in(grad_out.shape());
  for (int c = 0; c < channels; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int n = 0; n < batch; ++n)
      for (int y = 0; y < h; ++y)
        for (int xx = 0; xx < w; ++xx) {
          const float dy = grad_out.at(n, c, y, xx);
          sum_dy += dy;
          sum_dy_xhat += dy * x_hat.at(n, c, y, xx);
        }
    grad_beta[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
    grad_gamma[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);

    const float g = gamma[static_cast<std::size_t>(c)];
    const float is = cache.inv_std[static_cast<std::size_t>(c)];
    const float mean_dy = static_cast<float>(sum_dy) / per_channel;
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) / per_channel;
    for (int n = 0; n < batch; ++n)
      for (int y = 0; y < h; ++y)
        for (int xx = 0; xx < w; ++xx) {
          const float dy = grad_out.at(n, c, y, xx);
          const float xh = x_hat.at(n, c, y, xx);
          grad_in.at(n, c, y, xx) = g * is * (dy - mean_dy - xh * mean_dy_xhat);
        }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// pooling / resize
// ---------------------------------------------------------------------------

Tensor maxpool2d(const Tensor& x, int kernel, int stride, std::vector<int>& argmax) {
  require(x.ndim() == 4, "maxpool2d: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int out_h = (h - kernel) / stride + 1;
  const int out_w = (w - kernel) / stride + 1;
  require(out_h > 0 && out_w > 0, "maxpool2d: empty output");
  Tensor out({batch, channels, out_h, out_w});
  argmax.assign(out.numel(), 0);
  std::size_t idx = 0;
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c)
      for (int oy = 0; oy < out_h; ++oy)
        for (int ox = 0; ox < out_w; ++ox, ++idx) {
          float best = -std::numeric_limits<float>::infinity();
          int best_pos = 0;
          for (int ky = 0; ky < kernel; ++ky)
            for (int kx = 0; kx < kernel; ++kx) {
              const int iy = oy * stride + ky;
              const int ix = ox * stride + kx;
              const float v = x.at(n, c, iy, ix);
              if (v > best) {
                best = v;
                best_pos = iy * w + ix;
              }
            }
          out[idx] = best;
          argmax[idx] = best_pos;
        }
  return out;
}

Tensor maxpool2d_backward(const Tensor& x, const Tensor& grad_out, int kernel, int stride,
                          const std::vector<int>& argmax) {
  (void)kernel;
  (void)stride;
  require(grad_out.numel() == argmax.size(), "maxpool2d_backward: argmax size");
  const int channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor grad_in(x.shape());
  const int batch = grad_out.dim(0);
  const int out_hw = grad_out.dim(2) * grad_out.dim(3);
  std::size_t idx = 0;
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c)
      for (int i = 0; i < out_hw; ++i, ++idx) {
        const int pos = argmax[idx];
        grad_in.at(n, c, pos / w, pos % w) += grad_out[idx];
      }
  (void)h;
  return grad_in;
}

Tensor global_avg_pool(const Tensor& x) {
  require(x.ndim() == 4, "global_avg_pool: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out({batch, channels, 1, 1});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c) {
      double acc = 0.0;
      for (int y = 0; y < h; ++y)
        for (int xx = 0; xx < w; ++xx) acc += x.at(n, c, y, xx);
      out.at(n, c, 0, 0) = static_cast<float>(acc) * inv;
    }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& x, const Tensor& grad_out) {
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor grad_in(x.shape());
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int n = 0; n < batch; ++n)
    for (int c = 0; c < channels; ++c) {
      const float g = grad_out.at(n, c, 0, 0) * inv;
      for (int y = 0; y < h; ++y)
        for (int xx = 0; xx < w; ++xx) grad_in.at(n, c, y, xx) = g;
    }
  return grad_in;
}

namespace {

/// Sample position mapping for align_corners=true bilinear resize.
inline float src_pos(int out_idx, int in_extent, int out_extent) {
  if (out_extent == 1) return 0.0f;
  return static_cast<float>(out_idx) * static_cast<float>(in_extent - 1) /
         static_cast<float>(out_extent - 1);
}

}  // namespace

Tensor bilinear_resize(const Tensor& x, int out_h, int out_w) {
  require(x.ndim() == 4, "bilinear_resize: input must be (N,C,H,W)");
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out({batch, channels, out_h, out_w});
  for (int oy = 0; oy < out_h; ++oy) {
    const float fy = src_pos(oy, h, out_h);
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(y0 + 1, h - 1);
    const float wy = fy - static_cast<float>(y0);
    for (int ox = 0; ox < out_w; ++ox) {
      const float fx = src_pos(ox, w, out_w);
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(x0 + 1, w - 1);
      const float wx = fx - static_cast<float>(x0);
      for (int n = 0; n < batch; ++n)
        for (int c = 0; c < channels; ++c) {
          const float v = (1 - wy) * ((1 - wx) * x.at(n, c, y0, x0) + wx * x.at(n, c, y0, x1)) +
                          wy * ((1 - wx) * x.at(n, c, y1, x0) + wx * x.at(n, c, y1, x1));
          out.at(n, c, oy, ox) = v;
        }
    }
  }
  return out;
}

Tensor bilinear_resize_backward(const Tensor& x, const Tensor& grad_out) {
  const int batch = x.dim(0), channels = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  Tensor grad_in(x.shape());
  for (int oy = 0; oy < out_h; ++oy) {
    const float fy = src_pos(oy, h, out_h);
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(y0 + 1, h - 1);
    const float wy = fy - static_cast<float>(y0);
    for (int ox = 0; ox < out_w; ++ox) {
      const float fx = src_pos(ox, w, out_w);
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(x0 + 1, w - 1);
      const float wx = fx - static_cast<float>(x0);
      for (int n = 0; n < batch; ++n)
        for (int c = 0; c < channels; ++c) {
          const float g = grad_out.at(n, c, oy, ox);
          grad_in.at(n, c, y0, x0) += (1 - wy) * (1 - wx) * g;
          grad_in.at(n, c, y0, x1) += (1 - wy) * wx * g;
          grad_in.at(n, c, y1, x0) += wy * (1 - wx) * g;
          grad_in.at(n, c, y1, x1) += wy * wx * g;
        }
    }
  }
  return grad_in;
}

// ---------------------------------------------------------------------------
// structure
// ---------------------------------------------------------------------------

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  require(a.ndim() == 4 && b.ndim() == 4, "concat_channels: 4D inputs required");
  require(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2) && a.dim(3) == b.dim(3),
          "concat_channels: N/H/W must match");
  const int batch = a.dim(0), ca = a.dim(1), cb = b.dim(1), h = a.dim(2), w = a.dim(3);
  Tensor out({batch, ca + cb, h, w});
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::copy(a.ptr() + static_cast<std::size_t>(n) * ca * plane,
              a.ptr() + static_cast<std::size_t>(n + 1) * ca * plane,
              out.ptr() + static_cast<std::size_t>(n) * (ca + cb) * plane);
    std::copy(b.ptr() + static_cast<std::size_t>(n) * cb * plane,
              b.ptr() + static_cast<std::size_t>(n + 1) * cb * plane,
              out.ptr() + static_cast<std::size_t>(n) * (ca + cb) * plane + ca * plane);
  }
  return out;
}

void split_channels(const Tensor& grad_out, int channels_a, Tensor& grad_a, Tensor& grad_b) {
  const int batch = grad_out.dim(0), total = grad_out.dim(1), h = grad_out.dim(2),
            w = grad_out.dim(3);
  const int channels_b = total - channels_a;
  grad_a = Tensor({batch, channels_a, h, w});
  grad_b = Tensor({batch, channels_b, h, w});
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int n = 0; n < batch; ++n) {
    std::copy(grad_out.ptr() + static_cast<std::size_t>(n) * total * plane,
              grad_out.ptr() + static_cast<std::size_t>(n) * total * plane + channels_a * plane,
              grad_a.ptr() + static_cast<std::size_t>(n) * channels_a * plane);
    std::copy(grad_out.ptr() + static_cast<std::size_t>(n) * total * plane + channels_a * plane,
              grad_out.ptr() + static_cast<std::size_t>(n + 1) * total * plane,
              grad_b.ptr() + static_cast<std::size_t>(n) * channels_b * plane);
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  require(same_shape(a, b), "add: shape mismatch");
  Tensor out = a;
  out.add_(b);
  return out;
}

// ---------------------------------------------------------------------------
// loss
// ---------------------------------------------------------------------------

float softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                            int ignore_label, Tensor& grad) {
  require(logits.ndim() == 4, "softmax_cross_entropy: logits must be (N,K,H,W)");
  const int batch = logits.dim(0), classes = logits.dim(1), h = logits.dim(2), w = logits.dim(3);
  require(labels.size() == static_cast<std::size_t>(batch) * h * w,
          "softmax_cross_entropy: label count mismatch");
  grad = Tensor(logits.shape());

  double loss = 0.0;
  std::size_t counted = 0;
  std::vector<float> probs(static_cast<std::size_t>(classes));
  for (int n = 0; n < batch; ++n) {
    for (int y = 0; y < h; ++y) {
      for (int xx = 0; xx < w; ++xx) {
        const int label = labels[(static_cast<std::size_t>(n) * h + y) * w + xx];
        if (label == ignore_label) continue;
        require(label >= 0 && label < classes, "softmax_cross_entropy: label out of range");
        float max_logit = -std::numeric_limits<float>::infinity();
        for (int k = 0; k < classes; ++k) max_logit = std::max(max_logit, logits.at(n, k, y, xx));
        double denom = 0.0;
        for (int k = 0; k < classes; ++k) {
          probs[static_cast<std::size_t>(k)] = std::exp(logits.at(n, k, y, xx) - max_logit);
          denom += probs[static_cast<std::size_t>(k)];
        }
        const double inv = 1.0 / denom;
        loss -= std::log(probs[static_cast<std::size_t>(label)] * inv);
        for (int k = 0; k < classes; ++k) {
          grad.at(n, k, y, xx) =
              static_cast<float>(probs[static_cast<std::size_t>(k)] * inv) - (k == label ? 1.0f : 0.0f);
        }
        ++counted;
      }
    }
  }
  if (counted == 0) return 0.0f;
  const float scale = 1.0f / static_cast<float>(counted);
  grad.scale_(scale);
  return static_cast<float>(loss) * scale;
}

std::vector<int> argmax_channels(const Tensor& logits) {
  const int batch = logits.dim(0), classes = logits.dim(1), h = logits.dim(2), w = logits.dim(3);
  std::vector<int> out(static_cast<std::size_t>(batch) * h * w);
  for (int n = 0; n < batch; ++n)
    for (int y = 0; y < h; ++y)
      for (int xx = 0; xx < w; ++xx) {
        int best = 0;
        float best_value = logits.at(n, 0, y, xx);
        for (int k = 1; k < classes; ++k) {
          const float v = logits.at(n, k, y, xx);
          if (v > best_value) {
            best_value = v;
            best = k;
          }
        }
        out[(static_cast<std::size_t>(n) * h + y) * w + xx] = best;
      }
  return out;
}

}  // namespace dlscale::tensor
