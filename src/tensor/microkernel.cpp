#include "dlscale/tensor/microkernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "dlscale/util/simd.hpp"

#if DLSCALE_SIMD_X86
#include <immintrin.h>
#endif

namespace dlscale::tensor::micro {

namespace {

/// k-block length: kKC rows of B stay cache resident across the row loop.
/// Shared by both paths — the block boundaries are part of the
/// per-element accumulation order for gemm_nn, so the scalar twin and the
/// AVX2 kernel must agree on them.
constexpr int kKC = 128;

#if DLSCALE_SIMD_X86
/// Vector width (floats per YMM lane group) and register row-block.
constexpr int kNR = 8;
constexpr int kMR = 4;

/// Per-thread transpose-pack scratch for gemm_nt_acc, grown monotonically
/// and reused across GEMM calls, samples, and training steps.
float* pack_scratch(std::size_t n) {
  thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}
#endif

// ---- scalar twins ---------------------------------------------------------
//
// These are the seed kernels, unchanged: they define the reference
// accumulation order (k ascending per output element, zeros in A
// skipped) that the AVX2 path reproduces bit for bit.

namespace scalar {

void gemm_nn(const float* a, const float* b, float* c, int rows, int k, int n) {
  for (int kb = 0; kb < k; kb += kKC) {
    const int kend = std::min(k, kb + kKC);
    for (int i = 0; i < rows; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int kk = kb; kk < kend; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(kk) * n;
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_tn(const float* a, const float* b, float* c, int i0, int i1, int m,
             int k, int n) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = i0; i < i1; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i - i0) * n;
      for (int j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void gemm_nt_acc(const float* a, const float* b, float* c, int rows, int k,
                 int n) {
  for (int i = 0; i < rows; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      c[static_cast<std::size_t>(i) * n + j] += acc;
    }
  }
}

void add_inplace(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
}

void add_scalar_inplace(float* p, float v, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) p[i] += v;
}

void scale_inplace(float* p, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) p[i] *= s;
}

void relu_inplace(float* p, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
}

void relu_zero_where_nonpositive(const float* x, float* g, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
}

void sgd_momentum_update(float* value, float* velocity, const float* grad,
                         float clip_scale, float weight_decay, float momentum,
                         float lr, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float g = clip_scale * grad[i] + weight_decay * value[i];
    velocity[i] = momentum * velocity[i] + g;
    value[i] -= lr * velocity[i];
  }
}

/// i16 saturation — the scalar model of maddubs' per-pair clamp.
inline std::int32_t sat16(std::int32_t v) {
  return std::min(32767, std::max(-32768, v));
}

/// CVTPS2DQ twin: round to nearest even; NaN and results outside i32
/// range become INT32_MIN (the instruction's "integer indefinite").
inline std::int32_t cvtps_i32(float v) {
  const float r = std::nearbyintf(v);
  if (r >= -2147483648.0f && r < 2147483648.0f) {
    return static_cast<std::int32_t>(r);
  }
  return std::numeric_limits<std::int32_t>::min();
}

void gemm_s8u8(const std::uint8_t* a, int lda, const std::int8_t* packed_b,
               std::int32_t* c, int rows, int k, int n) {
  const int kq = (k + 3) / 4;
  const int np = (n + 7) / 8;
  for (int i = 0; i < rows; ++i) {
    const std::uint8_t* arow = a + static_cast<std::size_t>(i) * lda;
    std::int32_t* crow = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < np; ++p) {
      const std::int8_t* panel =
          packed_b + static_cast<std::size_t>(p) * kq * 32;
      const int jn = std::min(8, n - p * 8);
      for (int j = 0; j < jn; ++j) {
        std::int32_t acc = 0;
        const std::int8_t* pq = panel + j * 4;
        for (int q = 0; q < kq; ++q, pq += 32) {
          const std::uint8_t* aq = arow + 4 * q;
          const std::int32_t p0 = static_cast<std::int32_t>(aq[0]) * pq[0] +
                                  static_cast<std::int32_t>(aq[1]) * pq[1];
          const std::int32_t p1 = static_cast<std::int32_t>(aq[2]) * pq[2] +
                                  static_cast<std::int32_t>(aq[3]) * pq[3];
          acc += sat16(p0) + sat16(p1);
        }
        crow[p * 8 + j] = acc;
      }
    }
  }
}

void quantize_u8(const float* src, std::uint8_t* dst, std::int64_t n,
                 float inv_scale, std::int32_t zero_point) {
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t q = cvtps_i32(src[i] * inv_scale);
    // Wrapping add, matching _mm256_add_epi32 on the vector path (the
    // zero-point shift can wrap when the conversion pegged at INT32_MIN
    // or near INT32_MAX; both paths must wrap identically).
    const std::int32_t shifted = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(q) + static_cast<std::uint32_t>(zero_point));
    dst[i] = static_cast<std::uint8_t>(std::min(255, std::max(0, shifted)));
  }
}

void transpose_u8(const std::uint8_t* src, int rows, int cols,
                  std::uint8_t* dst, int dst_stride) {
  // Tiled so both the contiguous reads and the strided writes stay
  // L1-resident (a flat loop would touch `cols` cache lines per row).
  constexpr int kTile = 64;
  for (int c0 = 0; c0 < cols; c0 += kTile) {
    const int c1 = std::min(c0 + kTile, cols);
    for (int r0 = 0; r0 < rows; r0 += kTile) {
      const int r1 = std::min(r0 + kTile, rows);
      for (int r = r0; r < r1; ++r) {
        const std::uint8_t* s = src + static_cast<std::size_t>(r) * cols;
        std::uint8_t* d = dst + r;
        for (int c = c0; c < c1; ++c) {
          d[static_cast<std::size_t>(c) * dst_stride] = s[c];
        }
      }
    }
  }
}

}  // namespace scalar

// ---- AVX2 path ------------------------------------------------------------
//
// Compiled with per-function target attributes so the TU itself stays
// executable on any x86-64; only the dispatcher can reach these, and only
// after CPUID confirms AVX2. No FMA: GEMM terms are _mm256_mul_ps
// followed by _mm256_add_ps so every rounding matches the scalar twin.

#if DLSCALE_SIMD_X86

namespace avx2 {

#define DLSCALE_AVX2 __attribute__((target("avx2")))

/// One C row times an 8-column strip of B streamed in place (row stride
/// ldb): crow[0..8) accumulates kc terms, k ascending, skipping zero A
/// elements. `astride` walks A's k axis (1 for nn rows, m for tn columns).
/// B is not packed: within one kKC block the strip touches at most kKC
/// cache lines, which stay L1-resident across the row loop, and skipping
/// the pack keeps single-digit-row calls (small parallel_for chunks)
/// profitable.
DLSCALE_AVX2 inline void row1x8(const float* akk, std::ptrdiff_t astride,
                                const float* bk, int ldb, float* crow, int kc) {
  __m256 acc = _mm256_loadu_ps(crow);
  for (int kk = 0; kk < kc; ++kk, bk += ldb) {
    const float aik = akk[static_cast<std::ptrdiff_t>(kk) * astride];
    if (aik == 0.0f) continue;
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(aik), _mm256_loadu_ps(bk)));
  }
  _mm256_storeu_ps(crow, acc);
}

/// kMR-row register-blocked variant: the B strip row is loaded once per k
/// step and broadcast-multiplied into four accumulators.
DLSCALE_AVX2 inline void rows4x8(const float* akk, std::ptrdiff_t astride,
                                 std::ptrdiff_t arow_stride, const float* bk, int ldb,
                                 float* crow, std::ptrdiff_t crow_stride, int kc) {
  __m256 acc0 = _mm256_loadu_ps(crow);
  __m256 acc1 = _mm256_loadu_ps(crow + crow_stride);
  __m256 acc2 = _mm256_loadu_ps(crow + 2 * crow_stride);
  __m256 acc3 = _mm256_loadu_ps(crow + 3 * crow_stride);
  for (int kk = 0; kk < kc; ++kk, bk += ldb) {
    const __m256 bv = _mm256_loadu_ps(bk);
    const float* ak = akk + static_cast<std::ptrdiff_t>(kk) * astride;
    const float a0 = ak[0];
    if (a0 != 0.0f) acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0), bv));
    const float a1 = ak[arow_stride];
    if (a1 != 0.0f) acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1), bv));
    const float a2 = ak[2 * arow_stride];
    if (a2 != 0.0f) acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2), bv));
    const float a3 = ak[3 * arow_stride];
    if (a3 != 0.0f) acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3), bv));
  }
  _mm256_storeu_ps(crow, acc0);
  _mm256_storeu_ps(crow + crow_stride, acc1);
  _mm256_storeu_ps(crow + 2 * crow_stride, acc2);
  _mm256_storeu_ps(crow + 3 * crow_stride, acc3);
}

/// Main micro-kernel: kMR rows x 16 columns (two YMM lane groups), eight
/// live accumulators. Each broadcast A element feeds both halves, so the
/// per-row zero branch cost is amortised over twice the output width.
DLSCALE_AVX2 inline void rows4x16(const float* akk, std::ptrdiff_t astride,
                                  std::ptrdiff_t arow_stride, const float* bk, int ldb,
                                  float* crow, std::ptrdiff_t crow_stride, int kc) {
  __m256 acc0a = _mm256_loadu_ps(crow);
  __m256 acc0b = _mm256_loadu_ps(crow + 8);
  __m256 acc1a = _mm256_loadu_ps(crow + crow_stride);
  __m256 acc1b = _mm256_loadu_ps(crow + crow_stride + 8);
  __m256 acc2a = _mm256_loadu_ps(crow + 2 * crow_stride);
  __m256 acc2b = _mm256_loadu_ps(crow + 2 * crow_stride + 8);
  __m256 acc3a = _mm256_loadu_ps(crow + 3 * crow_stride);
  __m256 acc3b = _mm256_loadu_ps(crow + 3 * crow_stride + 8);
  for (int kk = 0; kk < kc; ++kk, bk += ldb) {
    const __m256 bva = _mm256_loadu_ps(bk);
    const __m256 bvb = _mm256_loadu_ps(bk + 8);
    const float* ak = akk + static_cast<std::ptrdiff_t>(kk) * astride;
    const float a0 = ak[0];
    if (a0 != 0.0f) {
      const __m256 v = _mm256_set1_ps(a0);
      acc0a = _mm256_add_ps(acc0a, _mm256_mul_ps(v, bva));
      acc0b = _mm256_add_ps(acc0b, _mm256_mul_ps(v, bvb));
    }
    const float a1 = ak[arow_stride];
    if (a1 != 0.0f) {
      const __m256 v = _mm256_set1_ps(a1);
      acc1a = _mm256_add_ps(acc1a, _mm256_mul_ps(v, bva));
      acc1b = _mm256_add_ps(acc1b, _mm256_mul_ps(v, bvb));
    }
    const float a2 = ak[2 * arow_stride];
    if (a2 != 0.0f) {
      const __m256 v = _mm256_set1_ps(a2);
      acc2a = _mm256_add_ps(acc2a, _mm256_mul_ps(v, bva));
      acc2b = _mm256_add_ps(acc2b, _mm256_mul_ps(v, bvb));
    }
    const float a3 = ak[3 * arow_stride];
    if (a3 != 0.0f) {
      const __m256 v = _mm256_set1_ps(a3);
      acc3a = _mm256_add_ps(acc3a, _mm256_mul_ps(v, bva));
      acc3b = _mm256_add_ps(acc3b, _mm256_mul_ps(v, bvb));
    }
  }
  _mm256_storeu_ps(crow, acc0a);
  _mm256_storeu_ps(crow + 8, acc0b);
  _mm256_storeu_ps(crow + crow_stride, acc1a);
  _mm256_storeu_ps(crow + crow_stride + 8, acc1b);
  _mm256_storeu_ps(crow + 2 * crow_stride, acc2a);
  _mm256_storeu_ps(crow + 2 * crow_stride + 8, acc2b);
  _mm256_storeu_ps(crow + 3 * crow_stride, acc3a);
  _mm256_storeu_ps(crow + 3 * crow_stride + 8, acc3b);
}

/// Shared nn/tn panel driver over one kKC block: 16-wide panels first,
/// then one 8-wide panel if eight or more columns remain. Returns the
/// first column not covered by vector panels (the scalar tail start).
/// A addressing: element (i, kb + kk) sits at
/// a_base + i * arow_stride + kk * astride.
DLSCALE_AVX2 inline int gemm_block_panels(const float* a_base, std::ptrdiff_t astride,
                                          std::ptrdiff_t arow_stride, const float* bk,
                                          float* c, int rows, int n, int kc) {
  int jp = 0;
  for (; jp + 2 * kNR <= n; jp += 2 * kNR) {
    int i = 0;
    for (; i + kMR <= rows; i += kMR) {
      rows4x16(a_base + i * arow_stride, astride, arow_stride, bk + jp, n,
               c + static_cast<std::size_t>(i) * n + jp, n, kc);
    }
    for (; i < rows; ++i) {
      row1x8(a_base + i * arow_stride, astride, bk + jp, n,
             c + static_cast<std::size_t>(i) * n + jp, kc);
      row1x8(a_base + i * arow_stride, astride, bk + jp + kNR, n,
             c + static_cast<std::size_t>(i) * n + jp + kNR, kc);
    }
  }
  for (; jp + kNR <= n; jp += kNR) {
    int i = 0;
    for (; i + kMR <= rows; i += kMR) {
      rows4x8(a_base + i * arow_stride, astride, arow_stride, bk + jp, n,
              c + static_cast<std::size_t>(i) * n + jp, n, kc);
    }
    for (; i < rows; ++i) {
      row1x8(a_base + i * arow_stride, astride, bk + jp, n,
             c + static_cast<std::size_t>(i) * n + jp, kc);
    }
  }
  return jp;
}

DLSCALE_AVX2 void gemm_nn(const float* a, const float* b, float* c, int rows,
                          int k, int n) {
  for (int kb = 0; kb < k; kb += kKC) {
    const int kc = std::min(k - kb, kKC);
    const float* bk = b + static_cast<std::size_t>(kb) * n;
    const int jp = gemm_block_panels(a + kb, 1, k, bk, c, rows, n, kc);
    if (jp < n) {
      // Column tail: the scalar twin restricted to [jp, n). Same
      // per-element k order, so identity is preserved.
      const int kend = kb + kc;
      for (int i = 0; i < rows; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int kk = kb; kk < kend; ++kk) {
          const float aik = arow[kk];
          if (aik == 0.0f) continue;
          const float* brow = b + static_cast<std::size_t>(kk) * n;
          for (int j = jp; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

DLSCALE_AVX2 void gemm_tn(const float* a, const float* b, float* c, int i0,
                          int i1, int m, int k, int n) {
  // Restructured from the scalar twin's kk-outer nest to panel form; each
  // c element still accumulates with kk strictly ascending (kb blocks in
  // order, kk in order inside a block), so results are bitwise equal.
  const int rows = i1 - i0;
  for (int kb = 0; kb < k; kb += kKC) {
    const int kc = std::min(k - kb, kKC);
    const float* bk = b + static_cast<std::size_t>(kb) * n;
    const int jp = gemm_block_panels(a + static_cast<std::size_t>(kb) * m + i0, m, 1, bk,
                                     c, rows, n, kc);
    if (jp < n) {
      const int kend = kb + kc;
      for (int i = 0; i < rows; ++i) {
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int kk = kb; kk < kend; ++kk) {
          const float aki = a[static_cast<std::size_t>(kk) * m + (i0 + i)];
          if (aki == 0.0f) continue;
          const float* brow = b + static_cast<std::size_t>(kk) * n;
          for (int j = jp; j < n; ++j) crow[j] += aki * brow[j];
        }
      }
    }
  }
}

DLSCALE_AVX2 void gemm_nt_acc(const float* a, const float* b, float* c,
                              int rows, int k, int n) {
  // Lanes are output columns j..j+7; each lane's accumulator runs the
  // scalar kernel's exact local k-ascending dot product, then lands in c
  // with one add — identical to the scalar `c += acc`.
  const int n_main = n & ~(kNR - 1);
  float* bp = pack_scratch(static_cast<std::size_t>(std::max(k, 1)) * kNR);
  for (int jp = 0; jp < n_main; jp += kNR) {
    // Transpose-pack: bp[kk][lane] = b[(jp+lane)][kk].
    for (int lane = 0; lane < kNR; ++lane) {
      const float* brow = b + static_cast<std::size_t>(jp + lane) * k;
      for (int kk = 0; kk < k; ++kk) {
        bp[static_cast<std::size_t>(kk) * kNR + lane] = brow[kk];
      }
    }
    int i = 0;
    for (; i + kMR <= rows; i += kMR) {
      const float* a0 = a + static_cast<std::size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (int kk = 0; kk < k; ++kk) {
        const __m256 bv = _mm256_loadu_ps(bp + static_cast<std::size_t>(kk) * kNR);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0[kk]), bv));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1[kk]), bv));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2[kk]), bv));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3[kk]), bv));
      }
      float* c0 = c + static_cast<std::size_t>(i) * n + jp;
      _mm256_storeu_ps(c0, _mm256_add_ps(_mm256_loadu_ps(c0), acc0));
      _mm256_storeu_ps(c0 + n, _mm256_add_ps(_mm256_loadu_ps(c0 + n), acc1));
      _mm256_storeu_ps(c0 + 2 * n, _mm256_add_ps(_mm256_loadu_ps(c0 + 2 * n), acc2));
      _mm256_storeu_ps(c0 + 3 * n, _mm256_add_ps(_mm256_loadu_ps(c0 + 3 * n), acc3));
    }
    for (; i < rows; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      __m256 acc = _mm256_setzero_ps();
      for (int kk = 0; kk < k; ++kk) {
        const __m256 bv = _mm256_loadu_ps(bp + static_cast<std::size_t>(kk) * kNR);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(arow[kk]), bv));
      }
      float* crow = c + static_cast<std::size_t>(i) * n + jp;
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc));
    }
  }
  if (n_main < n) {
    for (int i = 0; i < rows; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      for (int j = n_main; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * k;
        float acc = 0.0f;
        for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        c[static_cast<std::size_t>(i) * n + j] += acc;
      }
    }
  }
}

DLSCALE_AVX2 void add_inplace(float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

DLSCALE_AVX2 void add_scalar_inplace(float* p, float v, std::int64_t n) {
  const __m256 vv = _mm256_set1_ps(v);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_add_ps(_mm256_loadu_ps(p + i), vv));
  }
  for (; i < n; ++i) p[i] += v;
}

DLSCALE_AVX2 void scale_inplace(float* p, float s, std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_mul_ps(_mm256_loadu_ps(p + i), vs));
  }
  for (; i < n; ++i) p[i] *= s;
}

DLSCALE_AVX2 void relu_inplace(float* p, std::int64_t n) {
  // maxps returns the *second* operand on equal-zeros or unordered, so
  // max_ps(x, 0) reproduces std::max(0.0f, x) exactly: -0.0 -> +0.0 and
  // NaN -> +0.0.
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_max_ps(_mm256_loadu_ps(p + i), zero));
  }
  for (; i < n; ++i) p[i] = std::max(0.0f, p[i]);
}

DLSCALE_AVX2 void relu_zero_where_nonpositive(const float* x, float* g,
                                              std::int64_t n) {
  // Ordered compare: NaN x keeps g, matching `if (x <= 0) g = 0`.
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_LE_OQ);
    _mm256_storeu_ps(g + i, _mm256_andnot_ps(mask, _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
}

DLSCALE_AVX2 void sgd_momentum_update(float* value, float* velocity,
                                      const float* grad, float clip_scale,
                                      float weight_decay, float momentum,
                                      float lr, std::int64_t n) {
  const __m256 cs = _mm256_set1_ps(clip_scale);
  const __m256 wd = _mm256_set1_ps(weight_decay);
  const __m256 mu = _mm256_set1_ps(momentum);
  const __m256 eta = _mm256_set1_ps(lr);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 val = _mm256_loadu_ps(value + i);
    const __m256 g = _mm256_add_ps(_mm256_mul_ps(cs, _mm256_loadu_ps(grad + i)),
                                   _mm256_mul_ps(wd, val));
    const __m256 vel = _mm256_add_ps(_mm256_mul_ps(mu, _mm256_loadu_ps(velocity + i)), g);
    _mm256_storeu_ps(velocity + i, vel);
    _mm256_storeu_ps(value + i, _mm256_sub_ps(val, _mm256_mul_ps(eta, vel)));
  }
  for (; i < n; ++i) {
    const float g = clip_scale * grad[i] + weight_decay * value[i];
    velocity[i] = momentum * velocity[i] + g;
    value[i] -= lr * velocity[i];
  }
}

/// Broadcast one 4-byte activation quad to all eight 32-bit lanes.
DLSCALE_AVX2 inline __m256i broadcast_quad(const std::uint8_t* p) {
  std::int32_t quad;
  std::memcpy(&quad, p, sizeof quad);
  return _mm256_set1_epi32(quad);
}

/// acc[j] += sat16(a0*b0j + a1*b1j) + sat16(a2*b2j + a3*b3j) for the
/// eight panel columns: maddubs produces the two saturated pair products
/// as i16, madd-with-ones sums them into i32 (exact: i16 + i16).
DLSCALE_AVX2 inline __m256i quad_madd(__m256i acc, __m256i va, __m256i vb,
                                      __m256i ones) {
  return _mm256_add_epi32(
      acc, _mm256_madd_epi16(_mm256_maddubs_epi16(va, vb), ones));
}

DLSCALE_AVX2 inline void store_i32_lanes(std::int32_t* dst, __m256i v,
                                         int lanes) {
  if (lanes == 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  } else {
    alignas(32) std::int32_t tmp[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    std::memcpy(dst, tmp, static_cast<std::size_t>(lanes) * sizeof(std::int32_t));
  }
}

DLSCALE_AVX2 void gemm_s8u8(const std::uint8_t* a, int lda,
                            const std::int8_t* packed_b, std::int32_t* c,
                            int rows, int k, int n) {
  const int kq = (k + 3) / 4;
  const int np = (n + 7) / 8;
  const __m256i ones = _mm256_set1_epi16(1);
  for (int p = 0; p < np; ++p) {
    const std::int8_t* panel = packed_b + static_cast<std::size_t>(p) * kq * 32;
    const int jn = std::min(8, n - p * 8);
    std::int32_t* cp = c + p * 8;
    int i = 0;
    for (; i + kMR <= rows; i += kMR) {
      const std::uint8_t* a0 = a + static_cast<std::size_t>(i) * lda;
      const std::uint8_t* a1 = a0 + lda;
      const std::uint8_t* a2 = a1 + lda;
      const std::uint8_t* a3 = a2 + lda;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      const std::int8_t* pq = panel;
      for (int q = 0; q < kq; ++q, pq += 32) {
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pq));
        acc0 = quad_madd(acc0, broadcast_quad(a0 + 4 * q), vb, ones);
        acc1 = quad_madd(acc1, broadcast_quad(a1 + 4 * q), vb, ones);
        acc2 = quad_madd(acc2, broadcast_quad(a2 + 4 * q), vb, ones);
        acc3 = quad_madd(acc3, broadcast_quad(a3 + 4 * q), vb, ones);
      }
      std::int32_t* crow = cp + static_cast<std::size_t>(i) * n;
      store_i32_lanes(crow, acc0, jn);
      store_i32_lanes(crow + n, acc1, jn);
      store_i32_lanes(crow + 2 * static_cast<std::size_t>(n), acc2, jn);
      store_i32_lanes(crow + 3 * static_cast<std::size_t>(n), acc3, jn);
    }
    for (; i < rows; ++i) {
      const std::uint8_t* arow = a + static_cast<std::size_t>(i) * lda;
      __m256i acc = _mm256_setzero_si256();
      const std::int8_t* pq = panel;
      for (int q = 0; q < kq; ++q, pq += 32) {
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pq));
        acc = quad_madd(acc, broadcast_quad(arow + 4 * q), vb, ones);
      }
      store_i32_lanes(cp + static_cast<std::size_t>(i) * n, acc, jn);
    }
  }
}

DLSCALE_AVX2 void quantize_u8(const float* src, std::uint8_t* dst,
                              std::int64_t n, float inv_scale,
                              std::int32_t zero_point) {
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256i zp = _mm256_set1_epi32(zero_point);
  const __m256i lo = _mm256_setzero_si256();
  const __m256i hi = _mm256_set1_epi32(255);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(src + i), inv));
    const __m256i clamped = _mm256_min_epi32(
        _mm256_max_epi32(_mm256_add_epi32(q, zp), lo), hi);
    // 8 x i32 in [0,255] -> 8 x u8: pack through u16 (packus interleaves
    // the 128-bit lanes; permute restores order before the final pack).
    const __m256i as16 = _mm256_permute4x64_epi64(
        _mm256_packus_epi32(clamped, clamped), 0xD8);
    const __m128i as8 = _mm_packus_epi16(_mm256_castsi256_si128(as16),
                                         _mm256_castsi256_si128(as16));
    std::memcpy(dst + i, &as8, 8);
  }
  for (; i < n; ++i) {
    const std::int32_t q = scalar::cvtps_i32(src[i] * inv_scale);
    const std::int32_t shifted = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(q) + static_cast<std::uint32_t>(zero_point));
    dst[i] = static_cast<std::uint8_t>(std::min(255, std::max(0, shifted)));
  }
}

/// 16x16 byte block transpose through the classic 4-stage SSE unpack
/// network (epi8 -> epi16 -> epi32 -> epi64). After the four stages
/// register c holds source column c, so stores land in order. Pure byte
/// movement — bitwise identical to the scalar loops by construction.
DLSCALE_AVX2 inline void transpose_16x16_u8(const std::uint8_t* src,
                                            std::size_t src_stride,
                                            std::uint8_t* dst,
                                            std::size_t dst_stride) {
  __m128i x[16], t[16], u[16], v[16], w[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + static_cast<std::size_t>(i) * src_stride));
  }
  for (int g = 0; g < 8; ++g) {  // pairs of adjacent rows
    t[2 * g] = _mm_unpacklo_epi8(x[2 * g], x[2 * g + 1]);
    t[2 * g + 1] = _mm_unpackhi_epi8(x[2 * g], x[2 * g + 1]);
  }
  for (int h = 0; h < 4; ++h) {  // 4-row groups
    const int b = 4 * h;
    u[b + 0] = _mm_unpacklo_epi16(t[b + 0], t[b + 2]);
    u[b + 1] = _mm_unpackhi_epi16(t[b + 0], t[b + 2]);
    u[b + 2] = _mm_unpacklo_epi16(t[b + 1], t[b + 3]);
    u[b + 3] = _mm_unpackhi_epi16(t[b + 1], t[b + 3]);
  }
  for (int h = 0; h < 2; ++h) {  // 8-row halves
    const int b = 8 * h;
    for (int j = 0; j < 4; ++j) {
      v[b + 2 * j] = _mm_unpacklo_epi32(u[b + j], u[b + j + 4]);
      v[b + 2 * j + 1] = _mm_unpackhi_epi32(u[b + j], u[b + j + 4]);
    }
  }
  for (int j = 0; j < 8; ++j) {  // join the two 8-row halves
    w[2 * j] = _mm_unpacklo_epi64(v[j], v[j + 8]);
    w[2 * j + 1] = _mm_unpackhi_epi64(v[j], v[j + 8]);
  }
  for (int c = 0; c < 16; ++c) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + static_cast<std::size_t>(c) * dst_stride), w[c]);
  }
}

DLSCALE_AVX2 void transpose_u8(const std::uint8_t* src, int rows, int cols,
                               std::uint8_t* dst, int dst_stride) {
  const int rb = rows & ~15;
  const int cb = cols & ~15;
  for (int c0 = 0; c0 < cb; c0 += 16) {
    for (int r0 = 0; r0 < rb; r0 += 16) {
      transpose_16x16_u8(src + static_cast<std::size_t>(r0) * cols + c0,
                         static_cast<std::size_t>(cols),
                         dst + static_cast<std::size_t>(c0) * dst_stride + r0,
                         static_cast<std::size_t>(dst_stride));
    }
    // Row remainder under the full column blocks.
    for (int r = rb; r < rows; ++r) {
      const std::uint8_t* s = src + static_cast<std::size_t>(r) * cols;
      std::uint8_t* d = dst + r;
      for (int c = c0; c < c0 + 16; ++c) {
        d[static_cast<std::size_t>(c) * dst_stride] = s[c];
      }
    }
  }
  // Column remainder, all rows.
  for (int r = 0; r < rows; ++r) {
    const std::uint8_t* s = src + static_cast<std::size_t>(r) * cols;
    std::uint8_t* d = dst + r;
    for (int c = cb; c < cols; ++c) {
      d[static_cast<std::size_t>(c) * dst_stride] = s[c];
    }
  }
}

#undef DLSCALE_AVX2

}  // namespace avx2

#endif  // DLSCALE_SIMD_X86

inline bool use_avx2() {
#if DLSCALE_SIMD_X86
  return util::simd_level() == util::SimdLevel::kAvx2;
#else
  return false;
#endif
}

}  // namespace

// ---- dispatchers ----------------------------------------------------------

void gemm_nn(const float* a, const float* b, float* c, int rows, int k, int n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::gemm_nn(a, b, c, rows, k, n);
#endif
  scalar::gemm_nn(a, b, c, rows, k, n);
}

void gemm_tn(const float* a, const float* b, float* c, int i0, int i1, int m,
             int k, int n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::gemm_tn(a, b, c, i0, i1, m, k, n);
#endif
  scalar::gemm_tn(a, b, c, i0, i1, m, k, n);
}

void gemm_nt_acc(const float* a, const float* b, float* c, int rows, int k,
                 int n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::gemm_nt_acc(a, b, c, rows, k, n);
#endif
  scalar::gemm_nt_acc(a, b, c, rows, k, n);
}

std::size_t gemm_s8u8_packed_size(int k, int n) {
  const std::size_t kq = (static_cast<std::size_t>(std::max(k, 0)) + 3) / 4;
  const std::size_t np = (static_cast<std::size_t>(std::max(n, 0)) + 7) / 8;
  return np * kq * 32;
}

void gemm_s8u8_pack_b(const std::int8_t* b, int k, int n, std::int8_t* packed) {
  // Pure data movement shared by both dispatch paths: the packed image is
  // part of the kernel's ABI, not a per-path optimization.
  const int kq = (k + 3) / 4;
  const int np = (n + 7) / 8;
  for (int p = 0; p < np; ++p) {
    for (int q = 0; q < kq; ++q) {
      std::int8_t* quad = packed + (static_cast<std::size_t>(p) * kq + q) * 32;
      for (int j = 0; j < 8; ++j) {
        const int col = 8 * p + j;
        for (int t = 0; t < 4; ++t) {
          const int kk = 4 * q + t;
          quad[j * 4 + t] = (kk < k && col < n)
                                ? b[static_cast<std::size_t>(kk) * n + col]
                                : std::int8_t{0};
        }
      }
    }
  }
}

void gemm_s8u8(const std::uint8_t* a, int lda, const std::int8_t* packed_b,
               std::int32_t* c, int rows, int k, int n) {
  if (k > kGemmS8U8MaxK) {
    throw std::invalid_argument(
        "gemm_s8u8: k=" + std::to_string(k) + " exceeds kGemmS8U8MaxK=" +
        std::to_string(kGemmS8U8MaxK) + " (i32 accumulator could overflow)");
  }
  if (lda < ((k + 3) & ~3)) {
    throw std::invalid_argument(
        "gemm_s8u8: lda=" + std::to_string(lda) +
        " is below the quad-padded depth " + std::to_string((k + 3) & ~3));
  }
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::gemm_s8u8(a, lda, packed_b, c, rows, k, n);
#endif
  scalar::gemm_s8u8(a, lda, packed_b, c, rows, k, n);
}

void quantize_u8(const float* src, std::uint8_t* dst, std::int64_t n,
                 float inv_scale, std::int32_t zero_point) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::quantize_u8(src, dst, n, inv_scale, zero_point);
#endif
  scalar::quantize_u8(src, dst, n, inv_scale, zero_point);
}

void transpose_u8(const std::uint8_t* src, int rows, int cols,
                  std::uint8_t* dst, int dst_stride) {
  if (rows < 0 || cols < 0 || dst_stride < rows) {
    throw std::invalid_argument(
        "transpose_u8: need rows, cols >= 0 and dst_stride >= rows");
  }
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::transpose_u8(src, rows, cols, dst, dst_stride);
#endif
  scalar::transpose_u8(src, rows, cols, dst, dst_stride);
}

void add_inplace(float* a, const float* b, std::int64_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::add_inplace(a, b, n);
#endif
  scalar::add_inplace(a, b, n);
}

void add_scalar_inplace(float* p, float v, std::int64_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::add_scalar_inplace(p, v, n);
#endif
  scalar::add_scalar_inplace(p, v, n);
}

void scale_inplace(float* p, float s, std::int64_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::scale_inplace(p, s, n);
#endif
  scalar::scale_inplace(p, s, n);
}

void relu_inplace(float* p, std::int64_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::relu_inplace(p, n);
#endif
  scalar::relu_inplace(p, n);
}

void relu_zero_where_nonpositive(const float* x, float* g, std::int64_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) return avx2::relu_zero_where_nonpositive(x, g, n);
#endif
  scalar::relu_zero_where_nonpositive(x, g, n);
}

void sgd_momentum_update(float* value, float* velocity, const float* grad,
                         float clip_scale, float weight_decay, float momentum,
                         float lr, std::int64_t n) {
#if DLSCALE_SIMD_X86
  if (use_avx2()) {
    return avx2::sgd_momentum_update(value, velocity, grad, clip_scale,
                                     weight_decay, momentum, lr, n);
  }
#endif
  scalar::sgd_momentum_update(value, velocity, grad, clip_scale, weight_decay,
                              momentum, lr, n);
}

const char* active_path() {
  return util::simd_level_name(use_avx2() ? util::SimdLevel::kAvx2
                                          : util::SimdLevel::kScalar);
}

}  // namespace dlscale::tensor::micro
