#include "dlscale/models/workload.hpp"

#include <stdexcept>

namespace dlscale::models {

double WorkloadSpec::total_fwd_flops() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.fwd_flops;
  return total;
}

double WorkloadSpec::total_bwd_flops() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.bwd_flops;
  return total;
}

std::size_t WorkloadSpec::total_param_bytes() const {
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.param_bytes;
  return total;
}

namespace {

/// Incrementally builds a spec while tracking the activation resolution.
class SpecBuilder {
 public:
  SpecBuilder(std::string name, int batch, int crop) : spec_{}, h_(crop), w_(crop) {
    spec_.name = std::move(name);
    spec_.batch_per_gpu = batch;
    spec_.crop = crop;
  }

  /// Standard convolution; emits a conv-weight tensor and, when `bn`, a
  /// batch-norm gamma/beta tensor (Horovod sees them as separate small
  /// gradients, which matters for negotiation-overhead realism).
  void conv(const std::string& name, int in_c, int out_c, int k, int stride, int dilation = 1,
            bool bn = true) {
    const int effective = dilation * (k - 1) + 1;
    const int pad = effective / 2;
    h_ = (h_ + 2 * pad - effective) / stride + 1;
    w_ = (w_ + 2 * pad - effective) / stride + 1;
    emit_conv(name, in_c, out_c, k, bn);
  }

  /// Depthwise-separable convolution (Xception building block): 3x3
  /// depthwise followed by 1x1 pointwise, each with BN.
  void sepconv(const std::string& name, int in_c, int out_c, int stride, int dilation = 1) {
    const int effective = dilation * 2 + 1;
    const int pad = effective / 2;
    h_ = (h_ + 2 * pad - effective) / stride + 1;
    w_ = (w_ + 2 * pad - effective) / stride + 1;
    // Depthwise 3x3: one filter per input channel.
    {
      LayerSpec layer;
      layer.name = name + ".dw";
      layer.param_bytes = static_cast<std::size_t>(in_c) * 9 * 4;
      layer.fwd_flops = flops_per_pos(static_cast<double>(in_c) * 9);
      layer.bwd_flops = 2.0 * layer.fwd_flops;
      layer.activation_bytes = activation_traffic(in_c);
      spec_.layers.push_back(layer);
      bn_layer(name + ".dw.bn", in_c);
    }
    emit_conv(name + ".pw", in_c, out_c, 1, /*bn=*/true);
  }

  /// Fully-connected head.
  void fc(const std::string& name, int in_features, int out_features) {
    LayerSpec layer;
    layer.name = name;
    layer.param_bytes = (static_cast<std::size_t>(in_features) * out_features + out_features) * 4;
    layer.fwd_flops =
        2.0 * in_features * out_features * static_cast<double>(spec_.batch_per_gpu);
    layer.bwd_flops = 2.0 * layer.fwd_flops;
    layer.activation_bytes = static_cast<double>(out_features) * spec_.batch_per_gpu * 4.0 * 3.0;
    spec_.layers.push_back(layer);
  }

  /// Explicit pooling / resize (changes resolution, no parameters).
  void set_resolution(int h, int w) {
    h_ = h;
    w_ = w;
  }
  void pool(int stride) {
    h_ = h_ / stride;
    w_ = w_ / stride;
  }

  [[nodiscard]] int h() const noexcept { return h_; }
  [[nodiscard]] int w() const noexcept { return w_; }

  WorkloadSpec take() { return std::move(spec_); }

 private:
  [[nodiscard]] double flops_per_pos(double macs_per_position) const {
    return 2.0 * macs_per_position * h_ * w_ * spec_.batch_per_gpu;
  }
  [[nodiscard]] double activation_traffic(int out_c) const {
    // Read + write + one re-read in backward, fp32.
    return static_cast<double>(out_c) * h_ * w_ * spec_.batch_per_gpu * 4.0 * 3.0;
  }

  void emit_conv(const std::string& name, int in_c, int out_c, int k, bool bn) {
    LayerSpec layer;
    layer.name = name;
    layer.param_bytes = static_cast<std::size_t>(out_c) * in_c * k * k * 4;
    layer.fwd_flops = flops_per_pos(static_cast<double>(out_c) * in_c * k * k);
    layer.bwd_flops = 2.0 * layer.fwd_flops;
    layer.activation_bytes = activation_traffic(out_c);
    spec_.layers.push_back(layer);
    if (bn) bn_layer(name + ".bn", out_c);
  }

  void bn_layer(const std::string& name, int channels) {
    LayerSpec layer;
    layer.name = name;
    layer.param_bytes = static_cast<std::size_t>(channels) * 2 * 4;
    // BN costs ~10 ops per element.
    layer.fwd_flops = 10.0 * channels * h_ * w_ * spec_.batch_per_gpu;
    layer.bwd_flops = 2.0 * layer.fwd_flops;
    layer.activation_bytes = activation_traffic(channels);
    spec_.layers.push_back(layer);
  }

  WorkloadSpec spec_;
  int h_;
  int w_;
};

}  // namespace

WorkloadSpec WorkloadSpec::deeplab_v3plus(int batch_per_gpu) {
  if (batch_per_gpu < 1) throw std::invalid_argument("deeplab_v3plus: batch must be >= 1");
  SpecBuilder b("DeepLab-v3+ (Xception-65, OS16, 513x513)", batch_per_gpu, 513);

  // --- Entry flow ---
  b.conv("entry.conv1", 3, 32, 3, 2);
  b.conv("entry.conv2", 32, 64, 3, 1);
  // Block 1 -> 128 channels, stride 2 (plus residual projection).
  b.sepconv("entry.b1.sep1", 64, 128, 1);
  b.sepconv("entry.b1.sep2", 128, 128, 1);
  b.sepconv("entry.b1.sep3", 128, 128, 2);
  b.conv("entry.b1.skip", 64, 128, 1, 1);  // resolution already advanced by sep3
  const int low_level_h = b.h();  // decoder skip taps here (129x129, 128ch)
  // Block 2 -> 256, stride 2.
  b.sepconv("entry.b2.sep1", 128, 256, 1);
  b.sepconv("entry.b2.sep2", 256, 256, 1);
  b.sepconv("entry.b2.sep3", 256, 256, 2);
  b.conv("entry.b2.skip", 128, 256, 1, 1);
  // Block 3 -> 728, stride 2 (reaches OS16: 33x33).
  b.sepconv("entry.b3.sep1", 256, 728, 1);
  b.sepconv("entry.b3.sep2", 728, 728, 1);
  b.sepconv("entry.b3.sep3", 728, 728, 2);
  b.conv("entry.b3.skip", 256, 728, 1, 1);

  // --- Middle flow: 16 residual blocks of 3 separable convs at 728 ---
  for (int block = 0; block < 16; ++block) {
    const std::string prefix = "middle.b" + std::to_string(block + 1);
    b.sepconv(prefix + ".sep1", 728, 728, 1);
    b.sepconv(prefix + ".sep2", 728, 728, 1);
    b.sepconv(prefix + ".sep3", 728, 728, 1);
  }

  // --- Exit flow (dilated, no further stride at OS16) ---
  b.sepconv("exit.b1.sep1", 728, 728, 1, 2);
  b.sepconv("exit.b1.sep2", 728, 1024, 1, 2);
  b.sepconv("exit.b1.sep3", 1024, 1024, 1, 2);
  b.conv("exit.b1.skip", 728, 1024, 1, 1);
  b.sepconv("exit.sep4", 1024, 1536, 1, 2);
  b.sepconv("exit.sep5", 1536, 1536, 1, 2);
  b.sepconv("exit.sep6", 1536, 2048, 1, 2);

  // --- ASPP at 33x33 on 2048 channels ---
  b.conv("aspp.branch1x1", 2048, 256, 1, 1);
  b.conv("aspp.branch_r6", 2048, 256, 3, 1, 6);
  b.conv("aspp.branch_r12", 2048, 256, 3, 1, 12);
  b.conv("aspp.branch_r18", 2048, 256, 3, 1, 18);
  {
    // Image pooling branch: global pool -> 1x1 -> upsample. The 1x1 runs
    // at 1x1 resolution, then features are broadcast back.
    const int aspp_h = b.h(), aspp_w = b.w();
    b.set_resolution(1, 1);
    b.conv("aspp.image_pool", 2048, 256, 1, 1);
    b.set_resolution(aspp_h, aspp_w);
  }
  b.conv("aspp.project", 1280, 256, 1, 1);

  // --- Decoder at 129x129 ---
  {
    const int aspp_h = b.h(), aspp_w = b.w();
    (void)aspp_h;
    (void)aspp_w;
    b.set_resolution(low_level_h, low_level_h);
  }
  b.conv("decoder.low_level", 128, 48, 1, 1);
  b.conv("decoder.conv1", 304, 256, 3, 1);
  b.conv("decoder.conv2", 256, 256, 3, 1);
  b.conv("decoder.classifier", 256, 21, 1, 1, 1, /*bn=*/false);

  return b.take();
}

WorkloadSpec WorkloadSpec::resnet50(int batch_per_gpu) {
  if (batch_per_gpu < 1) throw std::invalid_argument("resnet50: batch must be >= 1");
  SpecBuilder b("ResNet-50 (224x224)", batch_per_gpu, 224);

  b.conv("conv1", 3, 64, 7, 2);
  b.pool(2);  // 3x3 max pool stride 2 -> 56x56

  struct Stage {
    int blocks;
    int mid;
    int out;
    int stride;
  };
  const Stage stages[] = {{3, 64, 256, 1}, {4, 128, 512, 2}, {6, 256, 1024, 2}, {3, 512, 2048, 2}};
  int in_c = 64;
  int stage_id = 1;
  for (const Stage& stage : stages) {
    for (int block = 0; block < stage.blocks; ++block) {
      const std::string prefix =
          "stage" + std::to_string(stage_id) + ".block" + std::to_string(block + 1);
      const int stride = block == 0 ? stage.stride : 1;
      b.conv(prefix + ".conv1", in_c, stage.mid, 1, 1);
      b.conv(prefix + ".conv2", stage.mid, stage.mid, 3, stride);
      b.conv(prefix + ".conv3", stage.mid, stage.out, 1, 1);
      if (block == 0) b.conv(prefix + ".skip", in_c, stage.out, 1, 1);
      in_c = stage.out;
    }
    ++stage_id;
  }
  b.set_resolution(1, 1);  // global average pool
  b.fc("fc", 2048, 1000);
  return b.take();
}

}  // namespace dlscale::models
