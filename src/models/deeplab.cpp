#include "dlscale/models/deeplab.hpp"

#include <stdexcept>

namespace dlscale::models {

namespace {

nn::Conv2dSpec spec_s(int stride) { return {stride, 1, 1}; }
nn::Conv2dSpec spec_d(int dilation) { return {1, dilation, dilation}; }
nn::Conv2dSpec spec_1x1() { return {1, 0, 1}; }

}  // namespace

namespace {

/// Encoder block factory: plain Conv-BN-ReLU or Xception-style separable.
std::unique_ptr<nn::Layer> make_block(bool separable, const std::string& name, int in_c,
                                      int out_c, nn::Conv2dSpec spec, util::Rng& rng) {
  if (separable) {
    return std::make_unique<nn::SeparableConvBnRelu>(name, in_c, out_c, spec, rng);
  }
  return std::make_unique<nn::ConvBnRelu>(name, in_c, out_c, 3, spec, rng);
}

}  // namespace

MiniDeepLabV3Plus::MiniDeepLabV3Plus(Config config, util::Rng& rng)
    : config_(config),
      stem_("stem", config.in_channels, config.width, 3, spec_s(2), rng),
      block1_(make_block(config.separable_backbone, "block1", config.width, 2 * config.width,
                         spec_s(2), rng)),
      block2_(make_block(config.separable_backbone, "block2", 2 * config.width, 4 * config.width,
                         spec_s(2), rng)),
      block3_(make_block(config.separable_backbone, "block3", 4 * config.width, 4 * config.width,
                         spec_d(2), rng)),
      aspp_1x1_("aspp.1x1", 4 * config.width, 2 * config.width, 1, spec_1x1(), rng),
      aspp_r2_("aspp.r2", 4 * config.width, 2 * config.width, 3, spec_d(2), rng),
      aspp_r4_("aspp.r4", 4 * config.width, 2 * config.width, 3, spec_d(4), rng),
      aspp_pool_proj_("aspp.pool", 4 * config.width, 2 * config.width, 1, spec_1x1(), rng),
      aspp_project_("aspp.project", 8 * config.width, 4 * config.width, 1, spec_1x1(), rng),
      low_level_proj_("decoder.low_level", 2 * config.width, config.width, 1, spec_1x1(), rng),
      decoder_conv_("decoder.conv", 5 * config.width, 2 * config.width, 3, spec_s(1), rng),
      classifier_("classifier", 2 * config.width, config.num_classes, 1, spec_1x1(),
                  /*bias=*/true, rng) {
  if (config.input_size % 8 != 0) {
    throw std::invalid_argument("MiniDeepLabV3Plus: input_size must be divisible by 8");
  }
}

Tensor MiniDeepLabV3Plus::forward(const Tensor& images, bool train) {
  const int full = config_.input_size;
  const int quarter = full / 4;

  // Encoder: /2 -> /4 (low-level tap) -> /8 -> /8 atrous.
  const Tensor s0 = stem_.forward(images, train);
  const Tensor s1 = block1_->forward(s0, train);
  const Tensor s2 = block2_->forward(s1, train);
  Tensor s3 = block3_->forward(s2, train);
  const int aspp_h = s3.dim(2), aspp_w = s3.dim(3);

  // ASPP: 1x1 + two atrous branches + image pooling, concat, project.
  const Tensor a1 = aspp_1x1_.forward(s3, train);
  const Tensor a2 = aspp_r2_.forward(s3, train);
  const Tensor a3 = aspp_r4_.forward(s3, train);
  const Tensor pooled = tensor::global_avg_pool(s3);
  Tensor pool_small = aspp_pool_proj_.forward(pooled, train);
  const Tensor pool_up = tensor::bilinear_resize(pool_small, aspp_h, aspp_w);
  const Tensor cat_aspp =
      tensor::concat_channels(tensor::concat_channels(tensor::concat_channels(a1, a2), a3),
                              pool_up);
  Tensor aspp_out = aspp_project_.forward(cat_aspp, train);

  // Decoder: upsample x2, fuse the low-level feature, refine, classify.
  const Tensor dec_up = tensor::bilinear_resize(aspp_out, quarter, quarter);
  const Tensor low = low_level_proj_.forward(s1, train);
  const Tensor cat_dec = tensor::concat_channels(dec_up, low);
  const Tensor refined = decoder_conv_.forward(cat_dec, train);
  Tensor logits_small = classifier_.forward(refined, train);
  Tensor logits = tensor::bilinear_resize(logits_small, full, full);

  if (train) {
    cache_block3_out_ = std::move(s3);
    cache_pool_small_ = std::move(pool_small);
    cache_aspp_out_ = std::move(aspp_out);
    cache_logits_small_ = std::move(logits_small);
  }
  return logits;
}

Tensor MiniDeepLabV3Plus::backward(const Tensor& grad_logits, nn::GradSink* sink) {
  if (cache_logits_small_.empty()) {
    throw std::logic_error("MiniDeepLabV3Plus: backward before forward(train)");
  }
  const int w = config_.width;
  // Hand-written tensor ops (resize/pool/split) have no Layer to report
  // their backward cost; charge a light elementwise pass per call.
  auto glue_cost = [sink](const Tensor& g) {
    if (sink != nullptr) {
      sink->backward_cost(8.0 * static_cast<double>(g.numel()),
                          8.0 * static_cast<double>(g.numel()));
    }
  };

  // Decoder. Sub-layer order is the exact reverse of parameters() so the
  // sink sees gradients in true backprop (reverse-parameters) order.
  glue_cost(grad_logits);
  const Tensor g_logits_small = tensor::bilinear_resize_backward(cache_logits_small_, grad_logits);
  const Tensor g_refined = classifier_.backward(g_logits_small, sink);
  const Tensor g_cat_dec = decoder_conv_.backward(g_refined, sink);
  Tensor g_dec_up, g_low;
  tensor::split_channels(g_cat_dec, 4 * w, g_dec_up, g_low);
  const Tensor g_s1_from_low = low_level_proj_.backward(g_low, sink);
  glue_cost(g_dec_up);
  const Tensor g_aspp_out = tensor::bilinear_resize_backward(cache_aspp_out_, g_dec_up);

  // ASPP.
  const Tensor g_cat_aspp = aspp_project_.backward(g_aspp_out, sink);
  Tensor g_abc, g_pool_up;
  tensor::split_channels(g_cat_aspp, 6 * w, g_abc, g_pool_up);
  Tensor g_ab, g_a3;
  tensor::split_channels(g_abc, 4 * w, g_ab, g_a3);
  Tensor g_a1, g_a2;
  tensor::split_channels(g_ab, 2 * w, g_a1, g_a2);

  glue_cost(g_pool_up);
  const Tensor g_pool_small = tensor::bilinear_resize_backward(cache_pool_small_, g_pool_up);
  const Tensor g_pooled = aspp_pool_proj_.backward(g_pool_small, sink);
  Tensor g_s3 = tensor::global_avg_pool_backward(cache_block3_out_, g_pooled);
  g_s3.add_(aspp_r4_.backward(g_a3, sink));
  g_s3.add_(aspp_r2_.backward(g_a2, sink));
  g_s3.add_(aspp_1x1_.backward(g_a1, sink));

  // Encoder.
  const Tensor g_s2 = block3_->backward(g_s3, sink);
  Tensor g_s1 = block2_->backward(g_s2, sink);
  g_s1.add_(g_s1_from_low);
  const Tensor g_s0 = block1_->backward(g_s1, sink);
  return stem_.backward(g_s0, sink);
}

std::vector<Parameter*> MiniDeepLabV3Plus::parameters() {
  std::vector<Parameter*> params;
  auto append = [&params](std::vector<Parameter*> layer_params) {
    for (Parameter* p : layer_params) params.push_back(p);
  };
  append(stem_.parameters());
  append(block1_->parameters());
  append(block2_->parameters());
  append(block3_->parameters());
  append(aspp_1x1_.parameters());
  append(aspp_r2_.parameters());
  append(aspp_r4_.parameters());
  append(aspp_pool_proj_.parameters());
  append(aspp_project_.parameters());
  append(low_level_proj_.parameters());
  append(decoder_conv_.parameters());
  append(classifier_.parameters());
  return params;
}

std::vector<nn::NamedTensor> MiniDeepLabV3Plus::buffers() {
  std::vector<nn::NamedTensor> bufs;
  auto append = [&bufs](std::vector<nn::NamedTensor> layer_bufs) {
    for (nn::NamedTensor b : layer_bufs) bufs.push_back(b);
  };
  append(stem_.buffers());
  append(block1_->buffers());
  append(block2_->buffers());
  append(block3_->buffers());
  append(aspp_1x1_.buffers());
  append(aspp_r2_.buffers());
  append(aspp_r4_.buffers());
  append(aspp_pool_proj_.buffers());
  append(aspp_project_.buffers());
  append(low_level_proj_.buffers());
  append(decoder_conv_.buffers());
  append(classifier_.buffers());
  return bufs;
}

std::size_t MiniDeepLabV3Plus::parameter_count() {
  std::size_t total = 0;
  for (const Parameter* p : parameters()) total += p->numel();
  return total;
}

void MiniDeepLabV3Plus::convert_precision(nn::Precision target,
                                          const nn::CalibrationTable* table) {
  if (target == nn::Precision::kFp32) {
    throw std::logic_error(
        "convert_precision: fp32 is the unconverted state, not a target");
  }
  if (precision_ != nn::Precision::kFp32) {
    throw std::logic_error(std::string("convert_precision: already ") +
                           nn::precision_name(precision_));
  }
  if (target == nn::Precision::kInt8) {
    if (table == nullptr) {
      throw std::invalid_argument(
          "convert_precision: int8 requires a calibration table");
    }
    // Validate every Conv2d has a calibrated range BEFORE converting
    // anything: conversion is one-way, so a partial failure would leave
    // a mixed-precision wreck. Layer names match what eval forwards
    // recorded under a CalibrationSession.
    const std::vector<nn::Layer*> top = {
        &stem_,           block1_.get(), block2_.get(),    block3_.get(),
        &aspp_1x1_,       &aspp_r2_,     &aspp_r4_,        &aspp_pool_proj_,
        &aspp_project_,   &low_level_proj_, &decoder_conv_, &classifier_};
    std::vector<nn::Layer*> stack(top.begin(), top.end());
    while (!stack.empty()) {
      nn::Layer* layer = stack.back();
      stack.pop_back();
      if (auto* conv = dynamic_cast<nn::Conv2d*>(layer)) {
        if (!table->has(conv->name())) {
          throw std::invalid_argument(
              "convert_precision: no calibrated range for layer '" +
              conv->name() + "'");
        }
      }
      for (nn::Layer* child : layer->children()) stack.push_back(child);
    }
  }
  for (nn::Layer* layer :
       {static_cast<nn::Layer*>(&stem_), block1_.get(), block2_.get(),
        block3_.get(), static_cast<nn::Layer*>(&aspp_1x1_),
        static_cast<nn::Layer*>(&aspp_r2_), static_cast<nn::Layer*>(&aspp_r4_),
        static_cast<nn::Layer*>(&aspp_pool_proj_),
        static_cast<nn::Layer*>(&aspp_project_),
        static_cast<nn::Layer*>(&low_level_proj_),
        static_cast<nn::Layer*>(&decoder_conv_),
        static_cast<nn::Layer*>(&classifier_)}) {
    nn::convert_layer_tree(*layer, target, table);
  }
  precision_ = target;
}

std::size_t MiniDeepLabV3Plus::cache_bytes() const {
  const std::size_t model_caches =
      (cache_block3_out_.numel() + cache_pool_small_.numel() + cache_aspp_out_.numel() +
       cache_logits_small_.numel()) *
      sizeof(float);
  return model_caches + stem_.cache_bytes() + block1_->cache_bytes() + block2_->cache_bytes() +
         block3_->cache_bytes() + aspp_1x1_.cache_bytes() + aspp_r2_.cache_bytes() +
         aspp_r4_.cache_bytes() + aspp_pool_proj_.cache_bytes() + aspp_project_.cache_bytes() +
         low_level_proj_.cache_bytes() + decoder_conv_.cache_bytes() + classifier_.cache_bytes();
}

}  // namespace dlscale::models
