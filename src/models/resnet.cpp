#include "dlscale/models/resnet.hpp"

#include <stdexcept>

namespace dlscale::models {

namespace {

nn::Conv2dSpec conv3(int stride) { return {stride, 1, 1}; }
nn::Conv2dSpec conv1x1(int stride) { return {stride, 0, 1}; }

}  // namespace

MiniResNet::Block::Block(const std::string& name, int in_c, int out_c, int stride, util::Rng& rng)
    : conv1(name + ".conv1", in_c, out_c, 3, conv3(stride), rng),
      conv2(name + ".conv2", out_c, out_c, 3, conv3(1), /*bias=*/false, rng),
      bn2(name + ".bn2", out_c),
      relu_out(name + ".relu") {
  if (in_c != out_c || stride != 1) {
    proj = std::make_unique<nn::Conv2d>(name + ".proj", in_c, out_c, 1, conv1x1(stride),
                                        /*bias=*/false, rng);
    proj_bn = std::make_unique<nn::BatchNorm2d>(name + ".proj_bn", out_c);
  }
}

Tensor MiniResNet::Block::forward(const Tensor& x, bool train) {
  const Tensor h = conv1.forward(x, train);
  Tensor h2 = bn2.forward(conv2.forward(h, train), train);
  const Tensor skip =
      proj ? proj_bn->forward(proj->forward(x, train), train) : x;
  h2.add_(skip);
  return relu_out.forward(h2, train);
}

Tensor MiniResNet::Block::backward(const Tensor& grad_out, nn::GradSink* sink) {
  const Tensor g_sum = relu_out.backward(grad_out, sink);
  // Projection branch first: its parameters come last in parameters(), so
  // the sink sees gradients in exact reverse-parameters order. The g_x +
  // skip accumulation below keeps the pre-refactor operand order, so the
  // result stays bitwise identical.
  Tensor g_skip;
  if (proj) g_skip = proj->backward(proj_bn->backward(g_sum, sink), sink);
  Tensor g_x = conv1.backward(conv2.backward(bn2.backward(g_sum, sink), sink), sink);
  if (proj) {
    g_x.add_(g_skip);
  } else {
    g_x.add_(g_sum);
  }
  return g_x;
}

std::vector<nn::Parameter*> MiniResNet::Block::parameters() {
  std::vector<Parameter*> params = conv1.parameters();
  for (Parameter* p : conv2.parameters()) params.push_back(p);
  for (Parameter* p : bn2.parameters()) params.push_back(p);
  if (proj) {
    for (Parameter* p : proj->parameters()) params.push_back(p);
    for (Parameter* p : proj_bn->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<nn::NamedTensor> MiniResNet::Block::buffers() {
  std::vector<nn::NamedTensor> bufs = conv1.buffers();
  for (nn::NamedTensor b : bn2.buffers()) bufs.push_back(b);
  if (proj_bn) {
    for (nn::NamedTensor b : proj_bn->buffers()) bufs.push_back(b);
  }
  return bufs;
}

MiniResNet::MiniResNet(Config config, util::Rng& rng)
    : config_(config),
      stem_("stem", config.in_channels, config.width, 3, conv3(1), rng),
      head_("head", 4 * config.width, config.num_classes, 1, conv1x1(1), /*bias=*/true, rng) {
  if (config.input_size % 4 != 0) {
    throw std::invalid_argument("MiniResNet: input_size must be divisible by 4");
  }
  const int w = config.width;
  int in_c = w;
  const int stage_channels[3] = {w, 2 * w, 4 * w};
  for (int stage = 0; stage < 3; ++stage) {
    for (int block = 0; block < config.blocks_per_stage; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      const std::string name =
          "stage" + std::to_string(stage + 1) + ".block" + std::to_string(block + 1);
      blocks_.emplace_back(name, in_c, stage_channels[stage], stride, rng);
      in_c = stage_channels[stage];
    }
  }
}

Tensor MiniResNet::forward(const Tensor& images, bool train) {
  Tensor x = stem_.forward(images, train);
  for (Block& block : blocks_) x = block.forward(x, train);
  if (train) cache_pool_in_ = x;
  const Tensor pooled = tensor::global_avg_pool(x);
  return head_.forward(pooled, train);
}

Tensor MiniResNet::backward(const Tensor& grad_logits, nn::GradSink* sink) {
  if (cache_pool_in_.empty()) throw std::logic_error("MiniResNet: backward before forward(train)");
  const Tensor g_pooled = head_.backward(grad_logits, sink);
  Tensor g = tensor::global_avg_pool_backward(cache_pool_in_, g_pooled);
  if (sink != nullptr) {
    sink->backward_cost(static_cast<double>(g.numel()), 8.0 * static_cast<double>(g.numel()));
  }
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) g = it->backward(g, sink);
  return stem_.backward(g, sink);
}

std::vector<Parameter*> MiniResNet::parameters() {
  std::vector<Parameter*> params;
  for (Parameter* p : stem_.parameters()) params.push_back(p);
  for (Block& block : blocks_) {
    for (Parameter* p : block.parameters()) params.push_back(p);
  }
  for (Parameter* p : head_.parameters()) params.push_back(p);
  return params;
}

std::vector<nn::NamedTensor> MiniResNet::buffers() {
  std::vector<nn::NamedTensor> bufs = stem_.buffers();
  for (Block& block : blocks_) {
    for (nn::NamedTensor b : block.buffers()) bufs.push_back(b);
  }
  for (nn::NamedTensor b : head_.buffers()) bufs.push_back(b);
  return bufs;
}

std::size_t MiniResNet::parameter_count() {
  std::size_t total = 0;
  for (const Parameter* p : parameters()) total += p->numel();
  return total;
}

}  // namespace dlscale::models
