#include "dlscale/net/profile.hpp"

namespace dlscale::net {

MpiProfile MpiProfile::spectrum_like() {
  MpiProfile p;
  p.name = "SpectrumMPI";
  p.eager_threshold_host = 64 << 10;
  p.eager_threshold_device = 4 << 10;
  p.per_op_overhead_s = 2.0e-6;
  p.rendezvous_handshake_s = 3.0e-6;
  p.cuda_aware = true;
  // Spectrum's device path circa 2019: GDR only for small messages, then a
  // host-staged copy pipeline that sustains well under PCIe peak. These
  // effective numbers track public osu_latency/osu_bw GPU-buffer results
  // on Summit-class systems.
  p.device_op_overhead_s = 12e-6;
  p.gdr_limit = 16 << 10;
  p.staging_bandwidth_Bps = 2.8e9;
  p.staging_overhead_s = 30e-6;
  p.nvlink = {1.5e-6, 38e9};
  p.xbus = {2.0e-6, 22e9};
  p.ib = {2.2e-6, 11.5e9};
  p.rails = 2;  // dual-rail EDR: separate messages spread across rails,
                // but no per-message striping (unlike MVAPICH2-GDR)
  p.rail_stripe_min = ~std::size_t{0};
  p.reduce_bw_device_Bps = 120e9;
  p.reduce_bw_host_Bps = 11e9;
  p.staged_reduce_on_host = true;
  p.small_allreduce_max = 16 << 10;
  p.ring_allreduce_min = 1 << 20;
  p.device_ring_allreduce = false;  // GPU collectives were not topology-aware
  return p;
}

MpiProfile MpiProfile::mvapich2_gdr_like() {
  MpiProfile p;
  p.name = "MVAPICH2-GDR";
  p.eager_threshold_host = 64 << 10;
  p.eager_threshold_device = 32 << 10;
  p.per_op_overhead_s = 1.2e-6;
  p.rendezvous_handshake_s = 2.0e-6;
  p.cuda_aware = true;
  // MVAPICH2-GDR keeps GPUDirect-RDMA engaged through medium sizes and
  // pipelines the large-message path (GDR + host-assisted) close to the
  // wire; its device-op software overhead is a few microseconds.
  p.device_op_overhead_s = 3.5e-6;
  p.gdr_limit = 8 << 20;
  p.staging_bandwidth_Bps = 10.5e9;
  p.staging_overhead_s = 8e-6;
  p.nvlink = {1.2e-6, 46e9};
  p.xbus = {1.7e-6, 26e9};
  p.ib = {1.8e-6, 12.1e9};
  p.rails = 2;  // dual-rail EDR striping for large messages
  p.rail_stripe_min = 1 << 20;
  p.reduce_bw_device_Bps = 200e9;
  p.reduce_bw_host_Bps = 10e9;
  p.staged_reduce_on_host = false;  // GPU kernels reduce even on the staged path
  p.small_allreduce_max = 16 << 10;
  p.ring_allreduce_min = 512 << 10;
  return p;
}

MpiProfile MpiProfile::ideal() {
  MpiProfile p;
  p.name = "ideal";
  p.eager_threshold_host = ~std::size_t{0};
  p.eager_threshold_device = ~std::size_t{0};
  p.per_op_overhead_s = 0.0;
  p.rendezvous_handshake_s = 0.0;
  p.cuda_aware = true;
  p.device_op_overhead_s = 0.0;
  p.gdr_limit = ~std::size_t{0};
  p.staging_bandwidth_Bps = 1e18;
  p.staging_overhead_s = 0.0;
  p.self = {0.0, 1e18};
  p.nvlink = {0.0, 1e18};
  p.xbus = {0.0, 1e18};
  p.ib = {0.0, 1e18};
  p.rails = 1;
  p.rail_stripe_min = ~std::size_t{0};
  p.reduce_bw_device_Bps = 1e18;
  p.reduce_bw_host_Bps = 1e18;
  p.staged_reduce_on_host = false;
  return p;
}

}  // namespace dlscale::net
