#include "dlscale/net/cost_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dlscale::net {

CostModel::CostModel(Topology topology, MpiProfile profile)
    : topology_(std::move(topology)), profile_(std::move(profile)) {}

TransferCost CostModel::message(int src, int dst, std::size_t bytes, MemSpace space) const {
  const HopClass hop = topology_.hop(src, dst);
  TransferCost cost;
  cost.setup_s = profile_.per_op_overhead_s;
  if (space == MemSpace::kDevice) {
    if (!profile_.cuda_aware) {
      throw std::logic_error("CostModel: profile '" + profile_.name +
                             "' cannot transfer device buffers");
    }
    cost.setup_s += profile_.device_op_overhead_s;
  }

  switch (hop) {
    case HopClass::kSelf:
      cost.setup_s += profile_.self.latency_s;
      cost.wire_s = static_cast<double>(bytes) / profile_.self.bandwidth_Bps;
      return cost;
    case HopClass::kIntraSocket:
      cost.setup_s += profile_.nvlink.latency_s;
      cost.wire_s = static_cast<double>(bytes) / profile_.nvlink.bandwidth_Bps;
      return cost;
    case HopClass::kInterSocket:
      cost.setup_s += profile_.xbus.latency_s;
      cost.wire_s = static_cast<double>(bytes) / profile_.xbus.bandwidth_Bps;
      return cost;
    case HopClass::kInterNode:
      break;
  }

  // Inter-node: choose GPUDirect vs host-staged path for device buffers.
  cost.inter_node = true;
  double bandwidth = profile_.ib.bandwidth_Bps;
  cost.setup_s += profile_.ib.latency_s;
  cost.striped = profile_.rails > 1 && bytes >= profile_.rail_stripe_min;
  if (cost.striped) bandwidth *= static_cast<double>(profile_.rails);
  cost.wire_s = static_cast<double>(bytes) / bandwidth;
  if (space == MemSpace::kDevice && bytes > profile_.gdr_limit) {
    // Host-staged pipeline: the end-to-end rate is the staging pipeline's,
    // but the NIC is only occupied for the wire portion; the slack is a
    // per-message delay (separate processes' pipelines run concurrently).
    cost.setup_s += profile_.staging_overhead_s;
    const double pipeline_s =
        static_cast<double>(bytes) / std::min(bandwidth, profile_.staging_bandwidth_Bps);
    cost.pipeline_extra_s = pipeline_s - cost.wire_s;
  }
  if (is_rendezvous(bytes, space)) cost.setup_s += profile_.rendezvous_handshake_s;
  return cost;
}

double CostModel::control_latency(int src, int dst) const {
  const HopClass hop = topology_.hop(src, dst);
  double latency = profile_.per_op_overhead_s;
  switch (hop) {
    case HopClass::kSelf: latency += profile_.self.latency_s; break;
    case HopClass::kIntraSocket: latency += profile_.nvlink.latency_s; break;
    case HopClass::kInterSocket: latency += profile_.xbus.latency_s; break;
    case HopClass::kInterNode: latency += profile_.ib.latency_s; break;
  }
  return latency;
}

bool CostModel::is_rendezvous(std::size_t bytes, MemSpace space) const noexcept {
  const std::size_t threshold = space == MemSpace::kDevice ? profile_.eager_threshold_device
                                                           : profile_.eager_threshold_host;
  return bytes > threshold;
}

namespace {
// Reservations older than this behind the newest booking are forgotten;
// near-synchronous collective traffic never looks back this far.
constexpr double kPruneWindowS = 0.25;
}  // namespace

NicContention::NicContention(int nodes, int rails) : rails_(rails) {
  if (nodes < 1 || rails < 1) throw std::invalid_argument("NicContention: nodes/rails must be >= 1");
  rail_state_.assign(static_cast<std::size_t>(nodes), std::vector<Rail>(rails));
}

double NicContention::earliest_gap(const Rail& rail, double ready, double wire) {
  double candidate = ready;
  for (const auto& [start, end] : rail.busy) {
    if (end <= candidate) continue;
    if (start >= candidate + wire) break;  // gap before this interval fits
    candidate = std::max(candidate, end);
  }
  return candidate;
}

double NicContention::earliest_common_gap(const std::vector<const Rail*>& rails, double ready,
                                          double wire) {
  double candidate = ready;
  // Fixpoint: each pass moves the candidate past at least one busy
  // interval, so this terminates in O(total intervals).
  for (;;) {
    bool moved = false;
    for (const Rail* rail : rails) {
      const double start = earliest_gap(*rail, candidate, wire);
      if (start > candidate) {
        candidate = start;
        moved = true;
      }
    }
    if (!moved) return candidate;
  }
}

void NicContention::insert(Rail& rail, double start, double wire) {
  const double end = start + wire;
  auto it = std::lower_bound(rail.busy.begin(), rail.busy.end(), std::make_pair(start, end));
  it = rail.busy.insert(it, {start, end});
  // Merge with neighbours touching this interval.
  if (it != rail.busy.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= it->first) {
      prev->second = std::max(prev->second, it->second);
      it = rail.busy.erase(it);
      it = std::prev(it);
    }
  }
  auto next = std::next(it);
  if (next != rail.busy.end() && it->second >= next->first) {
    it->second = std::max(it->second, next->second);
    rail.busy.erase(next);
  }
}

void NicContention::prune(double horizon) {
  for (auto& node : rail_state_) {
    for (Rail& rail : node) {
      auto it = rail.busy.begin();
      while (it != rail.busy.end() && it->second < horizon) ++it;
      rail.busy.erase(rail.busy.begin(), it);
    }
  }
}

double NicContention::reserve(int src_node, int dst_node, double ready_s, double wire_s,
                              bool striped) {
  if (src_node == dst_node) {
    throw std::logic_error("NicContention: intra-node transfer should not reserve NIC rails");
  }
  // Control-plane messages do not consume rail bandwidth.
  if (wire_s <= 0.0) return ready_s;

  std::lock_guard<std::mutex> lock(mutex_);
  auto& src = rail_state_[static_cast<std::size_t>(src_node)];
  auto& dst = rail_state_[static_cast<std::size_t>(dst_node)];

  double start = 0.0;
  if (striped) {
    std::vector<const Rail*> all;
    for (const Rail& rail : src) all.push_back(&rail);
    for (const Rail& rail : dst) all.push_back(&rail);
    start = earliest_common_gap(all, ready_s, wire_s);
    for (Rail& rail : src) insert(rail, start, wire_s);
    for (Rail& rail : dst) insert(rail, start, wire_s);
  } else {
    // Try every (src rail, dst rail) pair; take the earliest joint gap.
    std::size_t best_s = 0, best_d = 0;
    start = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < src.size(); ++s) {
      for (std::size_t d = 0; d < dst.size(); ++d) {
        const double t = earliest_common_gap({&src[s], &dst[d]}, ready_s, wire_s);
        if (t < start) {
          start = t;
          best_s = s;
          best_d = d;
        }
      }
    }
    insert(src[best_s], start, wire_s);
    insert(dst[best_d], start, wire_s);
  }

  const double done = start + wire_s;
  if (done > max_end_) {
    max_end_ = done;
    prune(max_end_ - kPruneWindowS);
  }
  return done;
}

void NicContention::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& node : rail_state_)
    for (Rail& rail : node) rail.busy.clear();
  max_end_ = 0.0;
}

}  // namespace dlscale::net
