#include "dlscale/net/topology.hpp"

#include <sstream>

namespace dlscale::net {

const char* to_string(HopClass hop) noexcept {
  switch (hop) {
    case HopClass::kSelf: return "self";
    case HopClass::kIntraSocket: return "intra-socket (NVLink)";
    case HopClass::kInterSocket: return "inter-socket (X-bus)";
    case HopClass::kInterNode: return "inter-node (IB)";
  }
  return "?";
}

Topology::Topology(int nodes, int gpus_per_node, int gpus_per_socket)
    : nodes_(nodes), gpus_per_node_(gpus_per_node), gpus_per_socket_(gpus_per_socket) {
  if (nodes < 1) throw std::invalid_argument("Topology: nodes must be >= 1");
  if (gpus_per_node < 1) throw std::invalid_argument("Topology: gpus_per_node must be >= 1");
  if (gpus_per_socket < 1 || gpus_per_socket > gpus_per_node) {
    throw std::invalid_argument("Topology: gpus_per_socket must be in [1, gpus_per_node]");
  }
  if (gpus_per_node % gpus_per_socket != 0) {
    throw std::invalid_argument("Topology: gpus_per_node must be a multiple of gpus_per_socket");
  }
}

HopClass Topology::hop(int a, int b) const {
  check_rank(a);
  check_rank(b);
  if (a == b) return HopClass::kSelf;
  if (node_of(a) != node_of(b)) return HopClass::kInterNode;
  if (socket_of_local(local_rank(a)) != socket_of_local(local_rank(b))) {
    return HopClass::kInterSocket;
  }
  return HopClass::kIntraSocket;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << nodes_ << " node(s) x " << gpus_per_node_ << " GPU(s) (" << gpus_per_socket_
      << " per socket) = " << world_size() << " ranks";
  return out.str();
}

}  // namespace dlscale::net
