#include "dlscale/data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dlscale::data {

SyntheticShapes::SyntheticShapes(Config config) : config_(config) {
  if (config.num_classes < 2) throw std::invalid_argument("SyntheticShapes: need >= 2 classes");
  if (config.num_classes > 6) {
    throw std::invalid_argument("SyntheticShapes: at most 6 classes (background + 5 shapes)");
  }
  if (config.image_size < 8) throw std::invalid_argument("SyntheticShapes: image too small");
}

namespace {

/// Per-class base colour (RGB in [-1, 1]); background is class 0.
constexpr float kClassColour[6][3] = {
    {-0.6f, -0.6f, -0.6f},  // background: dark grey
    {0.9f, -0.4f, -0.4f},   // disks: red
    {-0.4f, 0.9f, -0.4f},   // rectangles: green
    {-0.4f, -0.4f, 0.9f},   // crosses: blue
    {0.9f, 0.9f, -0.4f},    // rings: yellow
    {0.9f, -0.4f, 0.9f},    // stripes: magenta
};

}  // namespace

void SyntheticShapes::draw_shape(Tensor& image, std::vector<int>& labels, int shape_class,
                                 util::Rng& rng) const {
  const int size = config_.image_size;
  const int cx = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(size)));
  const int cy = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(size)));
  const int radius = 3 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(size / 4)));
  const float angle = static_cast<float>(rng.uniform(0.0, 3.14159));

  auto paint = [&](int x, int y) {
    if (x < 0 || x >= size || y < 0 || y >= size) return;
    labels[static_cast<std::size_t>(y) * size + x] = shape_class;
    for (int c = 0; c < 3; ++c) {
      image.at(0, c, y, x) = kClassColour[shape_class][c];
    }
  };

  switch (shape_class % 5) {
    case 1: {  // disk
      for (int y = cy - radius; y <= cy + radius; ++y)
        for (int x = cx - radius; x <= cx + radius; ++x) {
          const int dx = x - cx, dy = y - cy;
          if (dx * dx + dy * dy <= radius * radius) paint(x, y);
        }
      break;
    }
    case 2: {  // rectangle
      const int half_w = radius, half_h = std::max(2, radius / 2);
      for (int y = cy - half_h; y <= cy + half_h; ++y)
        for (int x = cx - half_w; x <= cx + half_w; ++x) paint(x, y);
      break;
    }
    case 3: {  // cross
      const int arm = std::max(2, radius / 3);
      for (int y = cy - radius; y <= cy + radius; ++y)
        for (int x = cx - arm; x <= cx + arm; ++x) paint(x, y);
      for (int y = cy - arm; y <= cy + arm; ++y)
        for (int x = cx - radius; x <= cx + radius; ++x) paint(x, y);
      break;
    }
    case 4: {  // ring
      const int inner = std::max(1, radius - 3);
      for (int y = cy - radius; y <= cy + radius; ++y)
        for (int x = cx - radius; x <= cx + radius; ++x) {
          const int d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
          if (d2 <= radius * radius && d2 >= inner * inner) paint(x, y);
        }
      break;
    }
    case 0: {  // stripes (class 5): oriented bars through the centre
      const float nx = std::cos(angle), ny = std::sin(angle);
      for (int y = cy - radius; y <= cy + radius; ++y)
        for (int x = cx - radius; x <= cx + radius; ++x) {
          const float proj = static_cast<float>(x - cx) * nx + static_cast<float>(y - cy) * ny;
          const int band = static_cast<int>(std::floor(proj / 3.0f));
          const int d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
          if (d2 <= radius * radius && band % 2 == 0) paint(x, y);
        }
      break;
    }
    default: break;
  }
}

Sample SyntheticShapes::make(std::uint64_t index) const {
  const int size = config_.image_size;
  util::Rng rng = util::Rng(config_.seed).child(index);

  Sample sample;
  sample.image = Tensor({1, 3, size, size});
  sample.labels.assign(static_cast<std::size_t>(size) * size, 0);

  // Textured background.
  for (int c = 0; c < 3; ++c)
    for (int y = 0; y < size; ++y)
      for (int x = 0; x < size; ++x) {
        sample.image.at(0, c, y, x) =
            kClassColour[0][c] + static_cast<float>(rng.normal(0.0, 0.1));
      }

  // Shapes, later ones painted over earlier ones (occlusion).
  const int shape_classes = config_.num_classes - 1;
  const int count =
      1 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(config_.max_shapes)));
  for (int i = 0; i < count; ++i) {
    const int cls = 1 + static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(shape_classes)));
    draw_shape(sample.image, sample.labels, cls, rng);
  }

  // Pixel noise over everything.
  for (std::size_t i = 0; i < sample.image.numel(); ++i) {
    sample.image[i] += static_cast<float>(rng.normal(0.0, config_.noise));
  }
  return sample;
}

Sample SyntheticShapes::make_batch(const std::vector<std::uint64_t>& indices) const {
  if (indices.empty()) throw std::invalid_argument("make_batch: empty index list");
  const int size = config_.image_size;
  const int batch = static_cast<int>(indices.size());
  Sample out;
  out.image = Tensor({batch, 3, size, size});
  out.labels.resize(static_cast<std::size_t>(batch) * size * size);
  const std::size_t image_elems = static_cast<std::size_t>(3) * size * size;
  const std::size_t label_elems = static_cast<std::size_t>(size) * size;
  for (int n = 0; n < batch; ++n) {
    const Sample sample = make(indices[static_cast<std::size_t>(n)]);
    std::copy(sample.image.ptr(), sample.image.ptr() + image_elems,
              out.image.ptr() + static_cast<std::size_t>(n) * image_elems);
    std::copy(sample.labels.begin(), sample.labels.end(),
              out.labels.begin() + static_cast<std::ptrdiff_t>(n * label_elems));
  }
  return out;
}

void flip_horizontal(Sample& sample) {
  const int batch = sample.image.dim(0), size = sample.image.dim(2);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < size; ++y)
        for (int x = 0; x < size / 2; ++x) {
          std::swap(sample.image.at(n, c, y, x), sample.image.at(n, c, y, size - 1 - x));
        }
    for (int y = 0; y < size; ++y)
      for (int x = 0; x < size / 2; ++x) {
        std::swap(sample.labels[(static_cast<std::size_t>(n) * size + y) * size + x],
                  sample.labels[(static_cast<std::size_t>(n) * size + y) * size + size - 1 - x]);
      }
  }
}

void translate(Sample& sample, int dy, int dx) {
  if (dy == 0 && dx == 0) return;
  const int batch = sample.image.dim(0), size = sample.image.dim(2);
  Tensor image(sample.image.shape());
  std::vector<int> labels(sample.labels.size(), 0);
  for (int n = 0; n < batch; ++n) {
    for (int y = 0; y < size; ++y) {
      const int sy = y - dy;
      for (int x = 0; x < size; ++x) {
        const int sx = x - dx;
        const std::size_t dst = (static_cast<std::size_t>(n) * size + y) * size + x;
        if (sy >= 0 && sy < size && sx >= 0 && sx < size) {
          for (int c = 0; c < 3; ++c) image.at(n, c, y, x) = sample.image.at(n, c, sy, sx);
          labels[dst] = sample.labels[(static_cast<std::size_t>(n) * size + sy) * size + sx];
        } else {
          for (int c = 0; c < 3; ++c) image.at(n, c, y, x) = kClassColour[0][c];
          labels[dst] = 0;
        }
      }
    }
  }
  sample.image = std::move(image);
  sample.labels = std::move(labels);
}

void augment(Sample& sample, util::Rng& rng, int max_shift) {
  if (rng.uniform() < 0.5) flip_horizontal(sample);
  if (max_shift > 0) {
    const auto span = static_cast<std::uint64_t>(2 * max_shift + 1);
    const int dy = static_cast<int>(rng.uniform_index(span)) - max_shift;
    const int dx = static_cast<int>(rng.uniform_index(span)) - max_shift;
    translate(sample, dy, dx);
  }
}

DistributedSampler::DistributedSampler(std::uint64_t dataset_size, int world_size, int rank,
                                       std::uint64_t seed)
    : dataset_size_(dataset_size), world_size_(world_size), rank_(rank), seed_(seed) {
  if (world_size < 1 || rank < 0 || rank >= world_size) {
    throw std::invalid_argument("DistributedSampler: bad rank/world");
  }
  shard_size_ = dataset_size / static_cast<std::uint64_t>(world_size);
  if (shard_size_ == 0) {
    throw std::invalid_argument("DistributedSampler: dataset smaller than world size");
  }
}

std::vector<std::uint64_t> DistributedSampler::epoch_indices(std::uint64_t epoch) const {
  // Same permutation on every rank (seed depends only on epoch), then a
  // strided slice per rank — Horovod/PyTorch DistributedSampler contract.
  std::vector<std::uint64_t> all(dataset_size_);
  std::iota(all.begin(), all.end(), 0);
  util::Rng rng = util::Rng(seed_).child(epoch + 1);
  for (std::uint64_t i = dataset_size_ - 1; i > 0; --i) {
    const std::uint64_t j = rng.uniform_index(i + 1);
    std::swap(all[i], all[j]);
  }
  std::vector<std::uint64_t> mine;
  mine.reserve(shard_size_);
  for (std::uint64_t i = 0; i < shard_size_; ++i) {
    mine.push_back(all[i * static_cast<std::uint64_t>(world_size_) +
                       static_cast<std::uint64_t>(rank_)]);
  }
  return mine;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  if (num_classes < 2) throw std::invalid_argument("ConfusionMatrix: need >= 2 classes");
}

void ConfusionMatrix::update(const std::vector<int>& prediction, const std::vector<int>& truth,
                             int ignore_label) {
  if (prediction.size() != truth.size()) {
    throw std::invalid_argument("ConfusionMatrix: size mismatch");
  }
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const int t = truth[i];
    if (t == ignore_label) continue;
    const int p = prediction[i];
    if (t < 0 || t >= num_classes_ || p < 0 || p >= num_classes_) {
      throw std::out_of_range("ConfusionMatrix: class id out of range");
    }
    ++counts_[static_cast<std::size_t>(t) * num_classes_ + p];
  }
}

double ConfusionMatrix::iou(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::uint64_t tp = counts_[c * num_classes_ + c];
  std::uint64_t truth_total = 0, pred_total = 0;
  for (int k = 0; k < num_classes_; ++k) {
    truth_total += counts_[c * num_classes_ + k];
    pred_total += counts_[static_cast<std::size_t>(k) * num_classes_ + c];
  }
  const std::uint64_t union_total = truth_total + pred_total - tp;
  if (union_total == 0) return 0.0;
  return static_cast<double>(tp) / static_cast<double>(union_total);
}

double ConfusionMatrix::miou() const {
  double total = 0.0;
  int present = 0;
  for (int cls = 0; cls < num_classes_; ++cls) {
    std::uint64_t appears = 0;
    for (int k = 0; k < num_classes_; ++k) {
      appears += counts_[static_cast<std::size_t>(cls) * num_classes_ + k] +
                 counts_[static_cast<std::size_t>(k) * num_classes_ + cls];
    }
    if (appears == 0) continue;
    total += iou(cls);
    ++present;
  }
  return present == 0 ? 0.0 : total / present;
}

double ConfusionMatrix::pixel_accuracy() const {
  std::uint64_t correct = 0, total = 0;
  for (int t = 0; t < num_classes_; ++t) {
    for (int p = 0; p < num_classes_; ++p) {
      const std::uint64_t count = counts_[static_cast<std::size_t>(t) * num_classes_ + p];
      total += count;
      if (t == p) correct += count;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

void ConfusionMatrix::reset() { std::fill(counts_.begin(), counts_.end(), 0); }

}  // namespace dlscale::data
