// Knob tuning exactly the way the paper does it: through HOROVOD_*
// environment variables, with zero changes to the "framework" (here, the
// simulator driving a DLv3+ training iteration).
//
// Usage:
//   ./build/examples/tune_horovod                       # defaults
//   HOROVOD_FUSION_THRESHOLD=8388608 HOROVOD_CYCLE_TIME=3.5
//   HOROVOD_HIERARCHICAL_ALLREDUCE=1 HOROVOD_CACHE_CAPACITY=1024
//       ./build/examples/tune_horovod [nodes]
#include <cstdio>
#include <cstdlib>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

perf::ScalingResult run(int nodes, const hvd::Knobs& knobs) {
  perf::ScalingConfig config;
  config.workload = models::WorkloadSpec::deeplab_v3plus(4);
  config.nodes = nodes;
  config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
  config.mpi_profile = net::MpiProfile::mvapich2_gdr_like();
  config.knobs = knobs;
  config.warmup_iterations = 1;
  config.iterations = 2;
  return perf::simulate(config);
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const auto env_knobs = hvd::Knobs::from_env(hvd::Knobs::horovod_defaults());
  const auto defaults = hvd::Knobs::horovod_defaults();

  std::printf("Environment configuration (HOROVOD_* variables):\n");
  std::printf("  HOROVOD_FUSION_THRESHOLD      = %s\n",
              util::format_bytes(env_knobs.fusion_threshold).c_str());
  std::printf("  HOROVOD_CYCLE_TIME            = %.1f ms\n", env_knobs.cycle_time_s * 1e3);
  std::printf("  HOROVOD_HIERARCHICAL_ALLREDUCE= %s\n",
              env_knobs.hierarchical_allreduce ? "on" : "off");
  std::printf("  response cache                = %s\n\n",
              env_knobs.response_cache ? "on" : "off");
  std::printf("%s\n", util::env_dump().c_str());

  std::fprintf(stderr, "simulating %d nodes (%d GPUs)...\n", nodes, nodes * 6);
  const auto with_defaults = run(nodes, defaults);
  const auto with_env = run(nodes, env_knobs);

  util::Table table("Effect of your knobs on DeepLab-v3+ training, " +
                    std::to_string(nodes * 6) + " GPUs, MVAPICH2-GDR");
  table.set_header({"configuration", "iteration (ms)", "img/s", "efficiency",
                    "allreduce launches/iter"});
  auto add = [&](const char* label, const perf::ScalingResult& result) {
    table.add_row({label, util::Table::num(result.iteration_s * 1e3, 1),
                   util::Table::num(result.images_per_s, 1),
                   util::Table::pct(result.scaling_efficiency),
                   util::Table::num(static_cast<long long>(result.hvd_stats.fused_batches / 2))});
  };
  add("Horovod defaults", with_defaults);
  add("your environment", with_env);
  table.print();

  const double speedup = with_env.images_per_s / with_defaults.images_per_s;
  std::printf("\nYour knobs are %.2fx %s the defaults.\n", speedup >= 1.0 ? speedup : 1.0 / speedup,
              speedup >= 1.0 ? "faster than" : "SLOWER than");
  return 0;
}
