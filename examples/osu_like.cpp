// OSU-microbenchmark-style CLI over the simulated cluster.
//
// The paper's methodology starts from osu_allreduce/osu_bw runs on Summit
// to pick the MPI library; this tool reproduces that workflow against the
// simulated network so users can probe any (collective, library, scale,
// buffer space) combination without writing code.
//
// Usage:
//   osu_like [--collective allreduce|bcast|allgather|alltoall|pt2pt]
//            [--library mvapich|spectrum] [--nodes N] [--host] [--hier]
#include <cstdio>
#include <cstring>
#include <string>

#include "dlscale/mpi/comm.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

struct Options {
  std::string collective = "allreduce";
  std::string library = "mvapich";
  int nodes = 4;
  mpi::MemSpace space = mpi::MemSpace::kDevice;
  bool hierarchical = false;
};

double run_once(const Options& options, std::size_t bytes) {
  mpi::WorldOptions world;
  world.topology = net::Topology::summit(options.nodes);
  world.profile = options.library == "spectrum" ? net::MpiProfile::spectrum_like()
                                                : net::MpiProfile::mvapich2_gdr_like();
  world.timing = true;
  double elapsed = 0.0;
  mpi::run_world(world, [&](mpi::Communicator& comm) {
    comm.barrier();
    const double t0 = comm.now();
    if (options.collective == "allreduce") {
      if (options.hierarchical) {
        comm.hierarchical_allreduce_sim(bytes, options.space);
      } else {
        comm.allreduce_sim(bytes, options.space);
      }
    } else if (options.collective == "bcast") {
      std::vector<std::byte> none;
      comm.bcast(none, 0, options.space, bytes);
    } else if (options.collective == "allgather") {
      std::vector<std::byte> mine(bytes / static_cast<std::size_t>(comm.size()) + 1);
      std::vector<std::byte> out(mine.size() * static_cast<std::size_t>(comm.size()));
      comm.allgather(mine, out, options.space);
    } else if (options.collective == "alltoall") {
      const std::size_t block = bytes / static_cast<std::size_t>(comm.size()) + 1;
      std::vector<std::byte> send(block * static_cast<std::size_t>(comm.size()));
      std::vector<std::byte> recv(send.size());
      comm.alltoall(send, recv, options.space);
    } else {  // pt2pt: first rank of node 0 -> first rank of node 1
      if (comm.rank() == 0) comm.send(6 % comm.size(), 1, {}, options.space, bytes);
      if (comm.rank() == 6 % comm.size() && comm.size() > 1) {
        comm.recv(0, 1, {}, options.space, bytes);
      }
    }
    comm.barrier();
    if (comm.rank() == 0) elapsed = comm.now() - t0;
  });
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--collective") {
      options.collective = next();
    } else if (arg == "--library") {
      options.library = next();
    } else if (arg == "--nodes") {
      options.nodes = std::atoi(next().c_str());
    } else if (arg == "--host") {
      options.space = mpi::MemSpace::kHost;
    } else if (arg == "--hier") {
      options.hierarchical = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--collective allreduce|bcast|allgather|alltoall|pt2pt]\n"
                   "          [--library mvapich|spectrum] [--nodes N] [--host] [--hier]\n",
                   argv[0]);
      return 1;
    }
  }
  if (options.nodes < 1) {
    std::fprintf(stderr, "--nodes must be >= 1\n");
    return 1;
  }

  util::Table table("osu_" + options.collective + " — " + options.library + ", " +
                    std::to_string(options.nodes * 6) + " GPUs, " +
                    (options.space == mpi::MemSpace::kDevice ? "device" : "host") + " buffers" +
                    (options.hierarchical ? ", hierarchical" : ""));
  table.set_header({"size", "latency (us)", "bandwidth (GB/s)"});
  for (std::size_t bytes = 4; bytes <= (256u << 20); bytes *= 4) {
    const double elapsed = run_once(options, bytes);
    table.add_row({util::format_bytes(bytes), util::Table::num(elapsed * 1e6, 1),
                   util::Table::num(static_cast<double>(bytes) / elapsed / 1e9, 3)});
  }
  table.print();
  return 0;
}
