// Serve a trained model over HTTP: the multi-model registry and the
// socket front-end end to end (DESIGN.md §13).
//
// 1. Train the mini DeepLab-v3+ briefly (serial) and save a checkpoint.
// 2. Write a JSON server spec (the --config file format) registering the
//    SAME checkpoint twice: "seg-fp32" and "seg-int8", each with its own
//    workers/max_batch/precision.
// 3. Load the spec, build the registry, stand up the HttpServer on an
//    ephemeral loopback port.
// 4. Act as the client: POST a predict to each model over a keep-alive
//    connection, hot-reload seg-fp32 via the :reload route, and print
//    GET /stats — the same bytes `curl` against this server would see.
// 5. Drain: begin_drain() flips /healthz to "draining" while admitted
//    work finishes, then full shutdown.
//
// Usage: ./build/examples/serve_http
#include <cstdio>
#include <fstream>
#include <string>

#include "dlscale/http/protocol.hpp"
#include "dlscale/http/server.hpp"
#include "dlscale/serve/model_registry.hpp"
#include "dlscale/train/checkpoint.hpp"
#include "dlscale/train/trainer.hpp"
#include "dlscale/util/rng.hpp"

using namespace dlscale;

namespace {

/// One keep-alive loopback connection issuing JSON requests.
http::Response request(http::Connection& connection, const std::string& method,
                       const std::string& target, std::string body = "") {
  http::Request req;
  req.method = method;
  req.target = target;
  req.body = std::move(body);
  if (!connection.write(req)) throw std::runtime_error("server closed the connection");
  auto response = connection.read_response(64ull * 1024 * 1024);
  if (!response) throw std::runtime_error("no response before EOF");
  return *response;
}

}  // namespace

int main() {
  // --- 1. Train briefly, save weights ---------------------------------
  train::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 16, .width = 8};
  config.dataset = {.image_size = 16, .num_classes = 6, .max_shapes = 2, .noise = 0.1f,
                    .seed = 2020};
  config.train_samples = 64;
  config.eval_samples = 16;
  config.batch_per_rank = 4;
  config.epochs = 2;
  config.schedule = {0.08, 0.9, 0};

  std::printf("Training mini DeepLab-v3+ for %d epochs (serial)...\n", config.epochs);
  train::NoComm no_comm;
  train::Trainer trainer(config, no_comm);
  (void)trainer.run();
  const std::string ckpt = "serve_http_ckpt.bin";
  train::save_model(trainer.model().parameters(), trainer.model().buffers(), ckpt);
  std::printf("Saved %s (eval mIOU %.1f%%)\n\n", ckpt.c_str(),
              trainer.report().final_miou() * 100.0);

  // --- 2. The server spec: one checkpoint, two named models -----------
  http::ServerSpec spec;
  spec.http.port = 0;  // ephemeral; spec files for real deployments pin one
  http::ModelSpec fp32;
  fp32.name = "seg-fp32";
  fp32.checkpoint = ckpt;
  fp32.workers = 2;
  fp32.max_batch = 8;
  fp32.precision = "fp32";
  fp32.model = http::to_model_arch(config.model);
  http::ModelSpec int8 = fp32;
  int8.name = "seg-int8";
  int8.workers = 1;
  int8.precision = "int8";
  spec.models = {fp32, int8};

  const std::string spec_path = "serve_http_spec.json";
  {
    std::ofstream out(spec_path);
    out << util::json::to_json(spec, /*pretty=*/true) << "\n";
  }
  std::printf("Wrote %s:\n%s\n", spec_path.c_str(),
              util::json::to_json(spec, /*pretty=*/true).c_str());

  // --- 3. Registry + front-end from the spec ---------------------------
  const http::ServerSpec loaded = http::load_server_spec(spec_path);
  serve::ModelRegistry registry;
  http::register_models(loaded, registry);
  http::HttpServer server(registry, loaded.http);
  std::printf("\nServing %zu models on http://127.0.0.1:%u\n", registry.size(), server.port());
  std::printf("Try: curl http://127.0.0.1:%u/healthz\n\n", server.port());

  // --- 4. Client round trips -------------------------------------------
  http::Connection client(util::Socket::connect_loopback(server.port()));
  std::printf("GET /healthz -> %s\n",
              request(client, "GET", "/healthz").body.c_str());

  util::Rng rng(7);
  const tensor::Tensor image = tensor::Tensor::randn(
      {1, config.model.in_channels, config.model.input_size, config.model.input_size}, rng, 1.0f);
  http::PredictRequest predict;
  predict.shape.assign(image.shape().begin(), image.shape().end());
  predict.image.assign(image.ptr(), image.ptr() + image.numel());
  for (const char* model : {"seg-fp32", "seg-int8"}) {
    const http::Response response =
        request(client, "POST", std::string("/v1/models/") + model + ":predict",
                util::json::to_json(predict));
    const auto body = util::json::from_json<http::PredictResponse>(response.body);
    std::printf("POST /v1/models/%s:predict -> %d (version %d, %s, batch %d, %.0fus total)\n",
                model, response.status, body.model_version, body.precision.c_str(),
                body.batch_size, body.total_us);
  }

  // Hot reload over HTTP: same checkpoint, quantized serving from here on.
  http::ReloadRequest reload;
  reload.checkpoint = ckpt;
  reload.precision = "int8";
  const http::Response reloaded = request(client, "POST", "/v1/models/seg-fp32:reload",
                                          util::json::to_json(reload));
  std::printf("POST /v1/models/seg-fp32:reload -> %d %s\n", reloaded.status,
              reloaded.body.c_str());

  std::printf("\nGET /stats ->\n%s\n",
              util::json::write_pretty(
                  util::json::parse(request(client, "GET", "/stats").body))
                  .c_str());

  // --- 5. Drain-shaped shutdown ----------------------------------------
  server.begin_drain();
  std::printf("\nAfter begin_drain(): GET /healthz -> %s\n",
              request(client, "GET", "/healthz").body.c_str());
  server.shutdown();
  std::printf("Shut down cleanly.\n");
  std::remove(ckpt.c_str());
  std::remove(spec_path.c_str());
  return 0;
}
