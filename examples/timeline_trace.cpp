// Horovod-timeline-style tracing (HOROVOD_TIMELINE equivalent).
//
// Simulates one DeepLab-v3+ training iteration on 24 GPUs, recording
// every negotiation round and fused allreduce in virtual time, and writes
// a Chrome-tracing JSON you can load in chrome://tracing or
// https://ui.perfetto.dev to see how communication overlaps backprop.
//
// Usage: ./build/examples/timeline_trace [output.json]
#include <cstdio>
#include <fstream>

#include "dlscale/gpu/device.hpp"
#include "dlscale/hvd/horovod.hpp"
#include "dlscale/models/workload.hpp"
#include "dlscale/perf/simulator.hpp"

using namespace dlscale;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/dlscale_timeline.json";

  const auto workload = models::WorkloadSpec::deeplab_v3plus(4);
  const double efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
  const gpu::ComputeModel gpu_model(gpu::DeviceSpec::v100_summit(), efficiency);
  const auto profile = perf::profile_iteration(workload, gpu_model);

  mpi::WorldOptions options;
  options.topology = net::Topology::summit(4);  // 24 GPUs
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;

  mpi::run_world(options, [&](mpi::Communicator& comm) {
    hvd::HorovodRuntime runtime(comm, hvd::Knobs::paper_tuned(), gpu_model);
    if (comm.rank() == 0) runtime.enable_timeline();
    // One training iteration's gradient stream at backprop ready times.
    for (std::size_t i = 0; i < profile.grad_names.size(); ++i) {
      runtime.submit({profile.grad_names[i], {}, profile.grad_bytes[i], profile.grad_ready_s[i]});
    }
    runtime.synchronize();
    comm.barrier();
    if (comm.rank() == 0) {
      std::ofstream out(path);
      runtime.write_timeline(out);
      std::printf("iteration: fwd %.0f ms + bwd %.0f ms compute; finished at %.0f ms virtual\n",
                  profile.fwd_s * 1e3, profile.bwd_s * 1e3, comm.now() * 1e3);
      std::printf("recorded %llu negotiation cycles and %llu fused allreduces\n",
                  static_cast<unsigned long long>(runtime.stats().cycles),
                  static_cast<unsigned long long>(runtime.stats().fused_batches));
      std::printf("trace written to %s — open in chrome://tracing or ui.perfetto.dev\n",
                  path.c_str());
    }
  });
  return 0;
}
