// Train-then-serve: the full lifecycle of a segmentation model through
// the serve:: subsystem.
//
// 1. Train the mini DeepLab-v3+ briefly (serial) and save a weights-only
//    checkpoint (train::save_model — not the full Trainer state).
// 2. Stand up a serve::Server on it: bounded admission queue, dynamic
//    batcher, worker replicas running inference-mode forwards.
// 3. Fire concurrent synthetic clients at it and print the latency
//    distribution the server's histograms collected.
// 4. Train one more epoch and hot-reload the new checkpoint into the
//    running server — zero downtime, version bump, in-flight batches
//    finish on the old weights.
// 5. Hot-reload the *same* checkpoint as int8 (calibrate + quantize on
//    load, DESIGN.md §9) and replay the client load, printing a latency
//    table for each precision side by side.
//
// Usage: ./build/examples/serve_segmentation [clients] [requests_per_client]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dlscale/serve/server.hpp"
#include "dlscale/train/checkpoint.hpp"
#include "dlscale/train/trainer.hpp"
#include "dlscale/util/rng.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const int per_client = argc > 2 ? std::atoi(argv[2]) : 32;
  if (clients < 1 || per_client < 1) {
    std::fprintf(stderr, "usage: %s [clients >= 1] [requests_per_client >= 1]\n", argv[0]);
    return 1;
  }

  // --- 1. Train briefly, save weights ---------------------------------
  train::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 16, .width = 8};
  config.dataset = {.image_size = 16, .num_classes = 6, .max_shapes = 2, .noise = 0.1f,
                    .seed = 2020};
  config.train_samples = 64;
  config.eval_samples = 16;
  config.batch_per_rank = 4;
  config.epochs = 2;
  config.schedule = {0.08, 0.9, 0};

  std::printf("Training mini DeepLab-v3+ for %d epochs (serial)...\n", config.epochs);
  train::NoComm no_comm;
  train::Trainer trainer(config, no_comm);
  (void)trainer.run();

  const std::string ckpt_v1 = "serve_example_v1.bin";
  const std::string ckpt_v2 = "serve_example_v2.bin";
  train::save_model(trainer.model().parameters(), trainer.model().buffers(), ckpt_v1);
  std::printf("Saved %s (eval mIOU %.1f%%)\n\n", ckpt_v1.c_str(),
              trainer.report().final_miou() * 100.0);

  // --- 2. Serve it ----------------------------------------------------
  serve::ServeConfig serve_config;
  serve_config.model = config.model;
  serve_config.workers = 2;
  serve_config.max_batch = 8;
  serve_config.max_wait_us = 300;
  serve_config.queue_capacity = clients * 4;
  serve::Server server(serve_config, ckpt_v1);
  std::printf("Serving: %d workers, max_batch %d, %lldus batching window, queue depth %llu\n",
              serve_config.workers, serve_config.max_batch,
              static_cast<long long>(serve_config.max_wait_us),
              static_cast<unsigned long long>(serve_config.queue_capacity));

  // --- 3. Concurrent synthetic clients --------------------------------
  // One load wave: every client keeps one request in flight and times it
  // end to end. Client-side latencies (unlike the server's cumulative
  // histograms) can be compared per wave, which step 5 needs.
  struct Wave {
    std::vector<double> latencies_ms;  // sorted on return
    double requests_per_s = 0.0;
    double pct(double q) const {
      if (latencies_ms.empty()) return 0.0;
      const auto idx = static_cast<std::size_t>(
          q / 100.0 * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[idx];
    }
  };
  auto run_wave = [&] {
    Wave wave;
    std::mutex mu;
    auto client = [&](int id) {
      util::Rng rng(static_cast<std::uint64_t>(1000 + id));
      const auto& m = serve_config.model;
      std::vector<double> mine;
      mine.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        auto f = server.submit(
            tensor::Tensor::randn({1, m.in_channels, m.input_size, m.input_size}, rng, 1.0f));
        if (!f.has_value()) {  // backpressure: shed, client retries later
          std::this_thread::yield();
          continue;
        }
        const serve::Response r = f->get();
        (void)r.labels;  // per-pixel classes, ready for downstream use
        mine.push_back(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
      }
      const std::lock_guard<std::mutex> lock(mu);
      wave.latencies_ms.insert(wave.latencies_ms.end(), mine.begin(), mine.end());
    };
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) threads.emplace_back(client, c);
    for (std::thread& t : threads) t.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::sort(wave.latencies_ms.begin(), wave.latencies_ms.end());
    wave.requests_per_s = static_cast<double>(wave.latencies_ms.size()) / elapsed_s;
    return wave;
  };
  const Wave fp32_wave = run_wave();

  const serve::ServerStats stats = server.stats();
  util::Table table("Serving latency (" + std::to_string(clients) + " clients x " +
                    std::to_string(per_client) + " requests)");
  table.set_header({"metric", "value"});
  table.add_row({"accepted", util::Table::num(static_cast<long long>(stats.accepted))});
  table.add_row({"rejected (queue full / closed)",
                 util::Table::num(static_cast<long long>(stats.rejected_full)) + " / " +
                     util::Table::num(static_cast<long long>(stats.rejected_closed))});
  table.add_row({"completed", util::Table::num(static_cast<long long>(stats.completed))});
  table.add_row({"batches", util::Table::num(static_cast<long long>(stats.batches))});
  table.add_row({"mean batch size", util::Table::num(stats.mean_batch_size, 2)});
  table.add_row({"queue p50 / p95 / p99 (us)",
                 util::Table::num(stats.queue_p50_us, 0) + " / " +
                     util::Table::num(stats.queue_p95_us, 0) + " / " +
                     util::Table::num(stats.queue_p99_us, 0)});
  table.add_row({"total p50 / p95 / p99 (us)",
                 util::Table::num(stats.total_p50_us, 0) + " / " +
                     util::Table::num(stats.total_p95_us, 0) + " / " +
                     util::Table::num(stats.total_p99_us, 0)});
  table.print();

  // --- 4. Hot reload a retrained checkpoint ---------------------------
  std::printf("\nTraining one more epoch, then hot-reloading...\n");
  (void)trainer.train_epoch();
  train::save_model(trainer.model().parameters(), trainer.model().buffers(), ckpt_v2);
  server.reload(ckpt_v2);
  std::printf("Model version now %d (was 1); old weights drained by refcount.\n",
              server.model_version());

  util::Rng rng(9);
  auto f = server.submit(tensor::Tensor::randn(
      {1, config.model.in_channels, config.model.input_size, config.model.input_size}, rng, 1.0f));
  if (f.has_value()) {
    const serve::Response r = f->get();
    std::printf("Post-reload request served by model version %d, batch size %d.\n",
                r.model_version, r.batch_size);
  }

  // --- 5. Hot-reload the same weights as int8 and compare -------------
  std::printf("\nHot-reloading %s as int8 (calibrated on load)...\n", ckpt_v2.c_str());
  serve::QuantizeSpec spec;
  spec.precision = nn::Precision::kInt8;
  server.reload(ckpt_v2, spec);
  std::printf("Model version now %d, serving precision '%s'.\n", server.model_version(),
              server.stats().precision);
  const Wave int8_wave = run_wave();

  const serve::ServerStats final_stats = server.stats();
  util::Table compare("Latency per serving precision (same weights, same load)");
  compare.set_header({"precision", "req/s", "p50 ms", "p95 ms", "p99 ms", "speedup"});
  for (const auto* row : {&fp32_wave, &int8_wave}) {
    compare.add_row({row == &fp32_wave ? "fp32" : "int8",
                     util::Table::num(row->requests_per_s, 1),
                     util::Table::num(row->pct(50), 2), util::Table::num(row->pct(95), 2),
                     util::Table::num(row->pct(99), 2),
                     util::Table::num(row->requests_per_s / fp32_wave.requests_per_s, 2) + "x"});
  }
  compare.print();
  std::printf("Requests served fp32: %llu, quantized: %llu.\n",
              static_cast<unsigned long long>(final_stats.fp32_requests),
              static_cast<unsigned long long>(final_stats.quantized_requests));

  server.shutdown();
  std::remove(ckpt_v1.c_str());
  std::remove(ckpt_v2.c_str());
  return 0;
}
