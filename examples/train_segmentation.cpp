// End-to-end distributed semantic-segmentation training — the paper's
// workload in miniature, on real (synthetic) data with real gradients.
//
// Trains the mini DeepLab-v3+ on the shape-segmentation dataset across 4
// data-parallel ranks, with every gradient streamed into the Horovod core
// as backward finalizes it, then demonstrates a full Trainer-state
// checkpoint: save mid-run, restore, continue, verify the result matches
// an uninterrupted run exactly.
//
// Usage: ./build/examples/train_segmentation [ranks] [epochs]
//
// DLSCALE_AUTOTUNE=1 turns on online knob autotuning: an hvd::Autotuner
// retunes fusion/cycle/hierarchy at measurement-window boundaries while
// the model trains — observation-only, metrics are unchanged.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dlscale/train/trainer.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

int main(int argc, char** argv) {
  const int world = argc > 1 ? std::atoi(argv[1]) : 4;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 5;
  if (world < 1 || epochs < 1) {
    std::fprintf(stderr, "usage: %s [ranks >= 1] [epochs >= 1]\n", argv[0]);
    return 1;
  }

  train::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 24, .width = 8};
  config.dataset = {.image_size = 24, .num_classes = 6, .max_shapes = 3, .noise = 0.12f,
                    .seed = 2020};
  config.train_samples = 96;
  config.eval_samples = 32;
  config.batch_per_rank = 2;
  config.epochs = epochs;
  config.schedule = {0.08, 0.9, 0};
  config.knobs = hvd::Knobs::from_env(hvd::Knobs::paper_tuned());
  config.knobs.cycle_time_s = 1e-4;
  config.autotune.enabled = util::env_bool("DLSCALE_AUTOTUNE", false);
  config.autotune.window_steps = 2;

  std::printf("%s\n", util::env_dump().c_str());
  std::printf("Training mini DeepLab-v3+ on %d rank(s), %d epoch(s), global batch %d%s\n\n", world,
              epochs, world * config.batch_per_rank,
              config.autotune.enabled ? ", online autotuning ON" : "");

  mpi::WorldOptions options;
  options.topology = net::Topology::single_node(world);
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = false;  // real training: wall-clock is the budget

  train::TrainReport report;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    auto result = train::train_distributed(comm, config);
    if (comm.rank() == 0) report = std::move(result);
  });

  util::Table curve("Learning curve (" + std::to_string(world) + " ranks)");
  curve.set_header({"epoch", "train loss", "eval mIOU", "eval pixel acc"});
  for (const auto& epoch : report.epochs) {
    curve.add_row({util::Table::num(static_cast<long long>(epoch.epoch)),
                   util::Table::num(epoch.train_loss, 4), util::Table::pct(epoch.eval_miou),
                   util::Table::pct(epoch.eval_pixel_accuracy)});
  }
  curve.print();
  std::printf("\nModel parameters: %zu | optimizer steps: %ld | fused allreduces: %llu\n",
              report.parameter_count, report.steps,
              static_cast<unsigned long long>(report.hvd_stats.fused_batches));

  // Checkpoint round-trip through the Trainer: train half the epochs
  // serially, save the FULL training state (weights, BatchNorm running
  // stats, SGD momentum, step counters), restore into a fresh Trainer and
  // finish; compare against one uninterrupted run of the same schedule.
  std::printf("\nTrainer checkpoint round-trip (serial reference)...\n");
  auto serial_config = config;
  serial_config.epochs = 2;
  const std::string path = "/tmp/dlscale_example_trainer_state.bin";

  train::NoComm uninterrupted_hook;
  train::Trainer uninterrupted(serial_config, uninterrupted_hook);
  const auto full_run = uninterrupted.run();

  train::NoComm first_hook;
  train::Trainer first_half(serial_config, first_hook);
  first_half.train_epoch();
  first_half.save_state(path);

  train::NoComm resumed_hook;
  train::Trainer resumed(serial_config, resumed_hook);
  resumed.load_state(path);
  const auto resumed_run = resumed.run();

  const double miou_a = full_run.final_miou();
  const double miou_b = resumed_run.final_miou();
  std::printf("uninterrupted mIOU %.4f, save/restore/continue mIOU %.4f -> %s\n", miou_a, miou_b,
              miou_a == miou_b ? "identical (checkpoint OK)" : "MISMATCH");
  std::remove(path.c_str());
  return miou_a == miou_b ? 0 : 1;
}
