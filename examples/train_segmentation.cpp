// End-to-end distributed semantic-segmentation training — the paper's
// workload in miniature, on real (synthetic) data with real gradients.
//
// Trains the mini DeepLab-v3+ on the shape-segmentation dataset across 4
// data-parallel ranks, with every gradient streamed into the Horovod core
// as backward finalizes it, then demonstrates a full Trainer-state
// checkpoint: save mid-run, restore, continue, verify the result matches
// an uninterrupted run exactly.
//
// Usage: ./build/examples/train_segmentation [ranks] [epochs]
//                                            [--inject-kill rank=R,step=S]
//                                            [--compression none|fp16|int8|topk]
//
// --inject-kill rank=2,step=40 kills rank 2 at optimisation step 40:
// training switches to the elastic path (train::ElasticTrainer), the
// survivors shrink the communicator, restore the last per-epoch
// checkpoint, and finish on 3 ranks; the recovery is reported at the end.
//
// --compression selects the gradient wire codec (DESIGN.md §12) —
// equivalent to DLSCALE_GRAD_COMPRESSION; int8/topk run with
// error-feedback residuals unless DLSCALE_ERROR_FEEDBACK=0.
//
// DLSCALE_AUTOTUNE=1 turns on online knob autotuning: an hvd::Autotuner
// retunes fusion/cycle/hierarchy at measurement-window boundaries while
// the model trains — observation-only, metrics are unchanged.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "dlscale/train/elastic.hpp"
#include "dlscale/util/env.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

namespace {

// Parses "--inject-kill rank=R,step=S" (or --inject-kill=rank=R,step=S)
// and "--compression CODEC" (or --compression=CODEC) out of argv, leaving
// positional arguments where they are.
bool parse_flags(int argc, char** argv, std::vector<int>& positional, int& kill_rank,
                 long& kill_step, std::optional<hvd::CompressionAlgo>& compression) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* spec = nullptr;
    if (std::strcmp(arg, "--inject-kill") == 0 && i + 1 < argc) {
      spec = argv[++i];
    } else if (std::strncmp(arg, "--inject-kill=", 14) == 0) {
      spec = arg + 14;
    }
    if (spec) {
      if (std::sscanf(spec, "rank=%d,step=%ld", &kill_rank, &kill_step) != 2) return false;
      continue;
    }
    const char* codec = nullptr;
    if (std::strcmp(arg, "--compression") == 0 && i + 1 < argc) {
      codec = argv[++i];
    } else if (std::strncmp(arg, "--compression=", 14) == 0) {
      codec = arg + 14;
    }
    if (codec) {
      compression = hvd::parse_compression(codec);
      if (!compression) {
        std::fprintf(stderr, "--compression: unknown codec '%s' (valid: none|fp16|int8|topk)\n",
                     codec);
        return false;
      }
      continue;
    }
    positional.push_back(std::atoi(arg));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> positional;
  int kill_rank = -1;
  long kill_step = -1;
  std::optional<hvd::CompressionAlgo> compression;
  if (!parse_flags(argc, argv, positional, kill_rank, kill_step, compression)) {
    return 1;
  }
  const bool inject = kill_rank >= 0;
  const int world = positional.size() > 0 ? positional[0] : 4;
  const int epochs = positional.size() > 1 ? positional[1] : 5;
  if (world < 1 || epochs < 1 || (inject && kill_rank >= world)) {
    std::fprintf(stderr,
                 "usage: %s [ranks >= 1] [epochs >= 1] [--inject-kill rank=R,step=S] "
                 "[--compression none|fp16|int8|topk]\n",
                 argv[0]);
    return 1;
  }

  train::TrainConfig config;
  config.model = {.in_channels = 3, .num_classes = 6, .input_size = 24, .width = 8};
  config.dataset = {.image_size = 24, .num_classes = 6, .max_shapes = 3, .noise = 0.12f,
                    .seed = 2020};
  config.train_samples = 96;
  config.eval_samples = 32;
  config.batch_per_rank = 2;
  config.epochs = epochs;
  config.schedule = {0.08, 0.9, 0};
  config.knobs = hvd::Knobs::from_env(hvd::Knobs::paper_tuned());
  config.knobs.cycle_time_s = 1e-4;
  if (compression) config.knobs.compression = *compression;
  config.autotune.enabled = util::env_bool("DLSCALE_AUTOTUNE", false);
  config.autotune.window_steps = 2;

  std::printf("%s\n", util::env_dump().c_str());
  // The collective/codec knobs decide the whole run's wire behaviour;
  // surface what was EFFECTIVELY chosen (env typos throw in from_env, but
  // "which default won" is still worth one explicit line).
  std::string effective_algo = "auto";
  for (const util::EnvRecord& record : util::env_effective()) {
    if (record.name == "DLSCALE_ALLREDUCE_ALGO" && record.from_env) {
      effective_algo = record.value;
    }
  }
  std::printf("Effective allreduce algo: %s | wire codec: %s", effective_algo.c_str(),
              hvd::to_string(config.knobs.effective_compression()));
  if (config.knobs.effective_compression() == hvd::CompressionAlgo::kTopK) {
    std::printf(" (ratio %.3f)", static_cast<double>(config.knobs.topk_ratio));
  }
  if (config.knobs.effective_compression() == hvd::CompressionAlgo::kInt8 ||
      config.knobs.effective_compression() == hvd::CompressionAlgo::kTopK) {
    std::printf(", error feedback %s", config.knobs.error_feedback ? "on" : "off");
  }
  std::printf("\n");
  std::printf("Training mini DeepLab-v3+ on %d rank(s), %d epoch(s), global batch %d%s\n", world,
              epochs, world * config.batch_per_rank,
              config.autotune.enabled ? ", online autotuning ON" : "");
  if (inject) {
    std::printf("Fault injection: rank %d dies at step %ld (elastic recovery ON)\n", kill_rank,
                kill_step);
  }
  std::printf("\n");

  mpi::WorldOptions options;
  options.topology = net::Topology::single_node(world);
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = false;  // real training: wall-clock is the budget
  if (inject) options.faults.kills = {{kill_rank, kill_step}};

  train::TrainReport report;
  std::vector<train::RecoveryEvent> recoveries;
  mpi::run_world(options, [&](mpi::Communicator& comm) {
    if (inject) {
      train::ElasticConfig elastic_config;
      elastic_config.train = config;
      elastic_config.checkpoint_path = "/tmp/dlscale_example_elastic.ckpt";
      elastic_config.checkpoint_every_epochs = 1;
      train::ElasticTrainer elastic(comm, elastic_config);
      auto result = elastic.run();
      if (elastic.comm().rank() == 0) {
        report = std::move(result);
        recoveries = elastic.recoveries();
      }
    } else {
      auto result = train::train_distributed(comm, config);
      if (comm.rank() == 0) report = std::move(result);
    }
  });
  if (inject) std::remove("/tmp/dlscale_example_elastic.ckpt");

  if (!recoveries.empty()) {
    util::Table recovery("Elastic recovery");
    recovery.set_header({"failed rank", "at step", "ranks", "resumed at", "steps replayed",
                         "recovery wall (ms)"});
    for (const auto& event : recoveries) {
      recovery.add_row({util::Table::num(static_cast<long long>(event.failed_global_rank)),
                        util::Table::num(static_cast<long long>(event.step_at_failure)),
                        std::to_string(event.old_size) + " -> " + std::to_string(event.new_size),
                        util::Table::num(static_cast<long long>(event.resumed_step)),
                        util::Table::num(static_cast<long long>(event.steps_replayed)),
                        util::Table::num(event.wall_recovery_s * 1e3, 2)});
    }
    recovery.print();
    std::printf("\n");
  }

  util::Table curve("Learning curve (" + std::to_string(world) + " ranks)");
  curve.set_header({"epoch", "train loss", "eval mIOU", "eval pixel acc"});
  for (const auto& epoch : report.epochs) {
    curve.add_row({util::Table::num(static_cast<long long>(epoch.epoch)),
                   util::Table::num(epoch.train_loss, 4), util::Table::pct(epoch.eval_miou),
                   util::Table::pct(epoch.eval_pixel_accuracy)});
  }
  curve.print();
  std::printf("\nModel parameters: %zu | optimizer steps: %ld | fused allreduces: %llu\n",
              report.parameter_count, report.steps,
              static_cast<unsigned long long>(report.hvd_stats.fused_batches));

  // Checkpoint round-trip through the Trainer: train half the epochs
  // serially, save the FULL training state (weights, BatchNorm running
  // stats, SGD momentum, step counters), restore into a fresh Trainer and
  // finish; compare against one uninterrupted run of the same schedule.
  std::printf("\nTrainer checkpoint round-trip (serial reference)...\n");
  auto serial_config = config;
  serial_config.epochs = 2;
  const std::string path = "/tmp/dlscale_example_trainer_state.bin";

  train::NoComm uninterrupted_hook;
  train::Trainer uninterrupted(serial_config, uninterrupted_hook);
  const auto full_run = uninterrupted.run();

  train::NoComm first_hook;
  train::Trainer first_half(serial_config, first_hook);
  first_half.train_epoch();
  first_half.save_state(path);

  train::NoComm resumed_hook;
  train::Trainer resumed(serial_config, resumed_hook);
  resumed.load_state(path);
  const auto resumed_run = resumed.run();

  const double miou_a = full_run.final_miou();
  const double miou_b = resumed_run.final_miou();
  std::printf("uninterrupted mIOU %.4f, save/restore/continue mIOU %.4f -> %s\n", miou_a, miou_b,
              miou_a == miou_b ? "identical (checkpoint OK)" : "MISMATCH");
  std::remove(path.c_str());
  return miou_a == miou_b ? 0 : 1;
}
