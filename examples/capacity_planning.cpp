// Capacity planning: "how many Summit nodes do I need to train DeepLab-v3+
// at a target rate, and what does the MPI library choice cost me?"
//
// The scenario the paper's intro motivates: a researcher with a
// segmentation model that trains at 6.7 img/s on one V100 wants epochs
// over a 10k-image dataset in minutes, not hours. This example sweeps
// node counts under both library profiles and prints time-per-epoch and
// the allocation needed to hit the target.
//
// Usage: ./build/examples/capacity_planning [target_img_per_s]
#include <cstdio>
#include <cstdlib>

#include "dlscale/perf/simulator.hpp"
#include "dlscale/util/table.hpp"

using namespace dlscale;

int main(int argc, char** argv) {
  const double target = argc > 1 ? std::atof(argv[1]) : 500.0;
  constexpr double kDatasetImages = 10582;  // PASCAL VOC trainaug size

  std::printf("Goal: %.0f img/s on DeepLab-v3+ (one V100 manages %.1f img/s)\n\n", target,
              perf::single_gpu_throughput(models::WorkloadSpec::deeplab_v3plus(4),
                                          perf::Calibration::paper_defaults().deeplab_efficiency));

  util::Table table("Summit allocation planning (tuned Horovod)");
  table.set_header({"nodes", "GPUs", "library", "img/s", "efficiency", "min/epoch (VOC trainaug)"});

  int needed_mvapich = -1, needed_spectrum = -1;
  for (int nodes : {1, 2, 4, 8, 14, 22}) {
    for (const auto& profile :
         {net::MpiProfile::spectrum_like(), net::MpiProfile::mvapich2_gdr_like()}) {
      perf::ScalingConfig config;
      config.workload = models::WorkloadSpec::deeplab_v3plus(4);
      config.nodes = nodes;
      config.flop_efficiency = perf::Calibration::paper_defaults().deeplab_efficiency;
      config.mpi_profile = profile;
      config.knobs = hvd::Knobs::paper_tuned();
      config.warmup_iterations = 1;
      config.iterations = 2;
      const auto result = perf::simulate(config);
      table.add_row({util::Table::num(static_cast<long long>(nodes)),
                     util::Table::num(static_cast<long long>(result.gpus)), profile.name,
                     util::Table::num(result.images_per_s, 1),
                     util::Table::pct(result.scaling_efficiency),
                     util::Table::num(kDatasetImages / result.images_per_s / 60.0, 1)});
      if (result.images_per_s >= target) {
        if (profile.name == "MVAPICH2-GDR" && needed_mvapich < 0) needed_mvapich = nodes;
        if (profile.name == "SpectrumMPI" && needed_spectrum < 0) needed_spectrum = nodes;
      }
    }
    std::fprintf(stderr, "... %d node(s) done\n", nodes);
  }
  table.print();

  std::printf("\nTo sustain %.0f img/s:\n", target);
  auto describe = [&](const char* name, int nodes) {
    if (nodes > 0) {
      std::printf("  %-14s %d nodes (%d GPUs)\n", name, nodes, nodes * 6);
    } else {
      std::printf("  %-14s not reachable within 22 nodes\n", name);
    }
  };
  describe("MVAPICH2-GDR:", needed_mvapich);
  describe("SpectrumMPI:", needed_spectrum);
  if (needed_mvapich > 0 && needed_spectrum > needed_mvapich) {
    std::printf("  -> the library choice alone saves %d nodes of allocation.\n",
                needed_spectrum - needed_mvapich);
  }
  return 0;
}
