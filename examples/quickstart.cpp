// Quickstart: the dlscale stack in ~60 lines.
//
//  1. Launch a simulated Summit-shaped world (2 nodes x 6 V100s).
//  2. Average a "gradient" across all ranks through the Horovod core
//     (negotiation, fusion, allreduce) — with REAL data movement.
//  3. Read back the virtual-time cost of the exchange under the
//     MVAPICH2-GDR network model.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "dlscale/hvd/horovod.hpp"
#include "dlscale/mpi/comm.hpp"

using namespace dlscale;

int main() {
  mpi::WorldOptions options;
  options.topology = net::Topology::summit(2);          // 12 GPUs
  options.profile = net::MpiProfile::mvapich2_gdr_like();
  options.timing = true;                                // virtual clocks on

  mpi::run_world(options, [](mpi::Communicator& comm) {
    // Each rank contributes rank+1 everywhere; the average over 12 ranks
    // is (1 + 2 + ... + 12) / 12 = 6.5.
    std::vector<float> gradient(1 << 20, static_cast<float>(comm.rank() + 1));

    hvd::HorovodRuntime horovod(comm, hvd::Knobs::paper_tuned());
    horovod.submit({"quickstart/gradient", std::span<float>(gradient)});
    horovod.synchronize();

    comm.barrier();
    if (comm.rank() == 0) {
      std::printf("world:            %s\n", comm.topology().describe().c_str());
      std::printf("library profile:  %s\n", comm.profile().name.c_str());
      std::printf("averaged value:   %.2f (expected 6.50)\n", gradient[12345]);
      std::printf("virtual time:     %.3f ms for a %zu MiB gradient average\n",
                  comm.now() * 1e3, gradient.size() * sizeof(float) >> 20);
      std::printf("fused launches:   %llu, negotiation cycles: %llu\n",
                  static_cast<unsigned long long>(horovod.stats().fused_batches),
                  static_cast<unsigned long long>(horovod.stats().cycles));
    }
  });
  return 0;
}
